//! Die geometry primitives.

/// A point in micrometres.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Point {
    /// X coordinate in µm.
    pub x: f32,
    /// Y coordinate in µm.
    pub y: f32,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// Manhattan distance to `other` — the paper's *net distance* feature.
    pub fn manhattan(self, other: Point) -> f32 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

/// An axis-aligned rectangle in micrometres, `x0 <= x1`, `y0 <= y1`.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Rect {
    /// Left edge.
    pub x0: f32,
    /// Bottom edge.
    pub y0: f32,
    /// Right edge.
    pub x1: f32,
    /// Top edge.
    pub y1: f32,
}

impl Rect {
    /// Creates a rectangle from two corners, normalizing the order.
    pub fn new(ax: f32, ay: f32, bx: f32, by: f32) -> Self {
        Self { x0: ax.min(bx), y0: ay.min(by), x1: ax.max(bx), y1: ay.max(by) }
    }

    /// Bounding box of two points — the paper's net-edge bounding box
    /// (Equation 4).
    pub fn bounding(a: Point, b: Point) -> Self {
        Self::new(a.x, a.y, b.x, b.y)
    }

    /// Rectangle width.
    pub fn width(&self) -> f32 {
        self.x1 - self.x0
    }

    /// Rectangle height.
    pub fn height(&self) -> f32 {
        self.y1 - self.y0
    }

    /// Rectangle area.
    pub fn area(&self) -> f32 {
        self.width() * self.height()
    }

    /// Center point.
    pub fn center(&self) -> Point {
        Point::new((self.x0 + self.x1) * 0.5, (self.y0 + self.y1) * 0.5)
    }

    /// `true` if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x0 && p.x <= self.x1 && p.y >= self.y0 && p.y <= self.y1
    }

    /// `true` if the two rectangles share interior area.
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x0 < other.x1 && other.x0 < self.x1 && self.y0 < other.y1 && other.y0 < self.y1
    }

    /// Clamps `p` into the rectangle.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.x0, self.x1), p.y.clamp(self.y0, self.y1))
    }

    /// Grows the rectangle by `m` on every side.
    #[must_use]
    pub fn inflate(&self, m: f32) -> Rect {
        Rect::new(self.x0 - m, self.y0 - m, self.x1 + m, self.y1 + m)
    }
}

/// The die outline and the macro blocks carved out of it.
#[derive(Clone, Debug, Default)]
pub struct Floorplan {
    /// Die outline (origin at (0, 0)).
    pub die: Rect,
    /// Macro blocks (placement and routing obstacles; the paper's *macro
    /// cells region* feature).
    pub macros: Vec<Rect>,
}

impl Floorplan {
    /// `true` if `p` is inside the die and outside every macro.
    pub fn is_placeable(&self, p: Point) -> bool {
        self.die.contains(p) && !self.macros.iter().any(|m| m.contains(p))
    }

    /// Fraction of the die covered by macros.
    pub fn macro_fraction(&self) -> f32 {
        if self.die.area() <= 0.0 {
            return 0.0;
        }
        self.macros.iter().map(Rect::area).sum::<f32>() / self.die.area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn manhattan_distance() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, -2.0);
        assert_eq!(a.manhattan(b), 7.0);
        assert_eq!(b.manhattan(a), 7.0);
        assert_eq!(a.manhattan(a), 0.0);
    }

    #[test]
    fn rect_normalizes_corners() {
        let r = Rect::new(5.0, 6.0, 1.0, 2.0);
        assert_eq!(r, Rect { x0: 1.0, y0: 2.0, x1: 5.0, y1: 6.0 });
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 16.0);
    }

    #[test]
    fn containment_and_overlap() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(10.0, 10.0)));
        assert!(!r.contains(Point::new(10.1, 5.0)));
        assert!(r.overlaps(&Rect::new(9.0, 9.0, 12.0, 12.0)));
        assert!(!r.overlaps(&Rect::new(10.0, 0.0, 12.0, 12.0))); // edge-touch
    }

    #[test]
    fn floorplan_placeability() {
        let fp = Floorplan {
            die: Rect::new(0.0, 0.0, 100.0, 100.0),
            macros: vec![Rect::new(0.0, 0.0, 30.0, 30.0)],
        };
        assert!(!fp.is_placeable(Point::new(10.0, 10.0)));
        assert!(fp.is_placeable(Point::new(50.0, 50.0)));
        assert!(!fp.is_placeable(Point::new(150.0, 50.0)));
        assert!((fp.macro_fraction() - 0.09).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn bounding_box_contains_both_points(
            ax in -100.0f32..100.0, ay in -100.0f32..100.0,
            bx in -100.0f32..100.0, by in -100.0f32..100.0,
        ) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let r = Rect::bounding(a, b);
            prop_assert!(r.contains(a));
            prop_assert!(r.contains(b));
            prop_assert!(r.area() >= 0.0);
        }

        #[test]
        fn clamp_lands_inside(
            px in -200.0f32..200.0, py in -200.0f32..200.0,
        ) {
            let r = Rect::new(0.0, 0.0, 50.0, 80.0);
            let c = r.clamp(Point::new(px, py));
            prop_assert!(r.contains(c));
        }

        #[test]
        fn manhattan_triangle_inequality(
            ax in -50.0f32..50.0, ay in -50.0f32..50.0,
            bx in -50.0f32..50.0, by in -50.0f32..50.0,
            cx in -50.0f32..50.0, cy in -50.0f32..50.0,
        ) {
            let (a, b, c) = (Point::new(ax, ay), Point::new(bx, by), Point::new(cx, cy));
            prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c) + 1e-3);
        }
    }
}
