//! Tape-free forward execution over a reusable buffer arena.
//!
//! [`InferCtx`] is the serving-side counterpart of [`crate::Tape`]: it
//! runs the same [`crate::ops`] kernels (so outputs are bit-identical to
//! the tape path) but records nothing for a backward sweep. Each op's
//! output lives in an arena slot; [`InferCtx::reset`] rewinds the arena
//! cursor without freeing, so repeated forward passes — the endpoint
//! chunks of `predict`, or many designs scored back to back — reuse the
//! same allocations. In the steady state a pass allocates nothing, which
//! is why the `nn::infer_arena_bytes` counter (bytes of fresh allocation
//! growth, recorded as it happens) stays far below `nn::tape_bytes`
//! (bytes appended to the tape, paid again on every pass).

use std::cell::{Cell, RefCell};
use std::mem;

use crate::exec::Exec;
use crate::ops;
use crate::store::{ParamId, ParamStore};
use crate::Tensor;

/// Handle to a value slot inside an [`InferCtx`] arena. Valid until the
/// next [`InferCtx::reset`].
#[derive(Clone, Copy, Debug)]
pub struct Val(usize);

/// A tape-free execution context for pure forward passes.
///
/// Use through the [`Exec`] trait:
///
/// ```
/// use rtt_nn::{Exec, InferCtx, Tensor};
///
/// let ctx = InferCtx::new();
/// let x = ctx.constant(Tensor::from_rows(&[&[1.0, -2.0]]));
/// let y = ctx.relu(x);
/// assert_eq!(ctx.value(y).data(), &[1.0, 0.0]);
/// ctx.reset(); // next pass reuses both buffers
/// ```
#[derive(Default)]
pub struct InferCtx {
    /// Output buffers, one per op executed this pass; `live` of them are
    /// valid. Kept (with their capacity) across `reset` calls.
    slots: RefCell<Vec<Tensor>>,
    live: Cell<usize>,
    /// Recycled scratch for `segment_max` / `maxpool2d` argmax bookkeeping
    /// and the conv2d im2col matrix.
    argmax_i64: RefCell<Vec<i64>>,
    argmax_u32: RefCell<Vec<u32>>,
    col: RefCell<Tensor>,
    /// Named-buffer pool for the batched flat inference path (see
    /// [`InferCtx::with_scratch`]); kept warm across passes like the
    /// slots.
    scratch: RefCell<Vec<Tensor>>,
}

impl InferCtx {
    /// Creates an empty context; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new forward pass: previously returned [`Val`]s become
    /// invalid, but every buffer (and its capacity) is retained for reuse.
    // rtt-lint: hot
    pub fn reset(&self) {
        self.live.set(0);
    }

    /// Number of values produced in the current pass.
    pub fn len(&self) -> usize {
        self.live.get()
    }

    /// `true` if no ops have run since the last [`InferCtx::reset`].
    pub fn is_empty(&self) -> bool {
        self.live.get() == 0
    }

    /// Current arena footprint in bytes (slot and scratch capacities).
    pub fn arena_bytes(&self) -> u64 {
        let slots = self.slots.borrow();
        let bytes = slots.iter().map(Tensor::capacity).sum::<usize>() * 4
            + self.argmax_i64.borrow().capacity() * 8
            + self.argmax_u32.borrow().capacity() * 4
            + self.col.borrow().capacity() * 4
            + self.scratch.borrow().iter().map(Tensor::capacity).sum::<usize>() * 4;
        bytes as u64
    }

    /// Runs a batched flat-kernel pass over `n` recycled scratch tensors
    /// plus the shared u32 index scratch (maxpool argmax) and the conv2d
    /// im2col matrix. Allocation growth of all handed-out buffers is
    /// tallied on `nn::infer_arena_bytes`, so in the steady state a
    /// batched pass allocates nothing, exactly like the [`Exec`] slots.
    ///
    /// The buffers are taken out of the context for the duration of `f`;
    /// nesting `with_scratch` inside `f` hands out a fresh (empty) pool,
    /// so callers should take everything they need in one call.
    // rtt-lint: hot
    pub fn with_scratch<R>(
        &self,
        n: usize,
        f: impl FnOnce(&mut [Tensor], &mut Vec<u32>, &mut Tensor) -> R,
    ) -> R {
        let mut pool = {
            let mut p = self.scratch.borrow_mut();
            if p.len() < n {
                // rtt-lint: allow(P001, reason = "pool grows to the pass's op count once; growth is tallied on nn::infer_arena_bytes")
                p.resize_with(n, Tensor::default);
            }
            mem::take(&mut *p)
        };
        let mut idx = mem::take(&mut *self.argmax_u32.borrow_mut());
        let mut col = mem::take(&mut *self.col.borrow_mut());
        let cap0 = pool.iter().map(Tensor::capacity).sum::<usize>() * 4
            + idx.capacity() * 4
            + col.capacity() * 4;
        let r = f(&mut pool[..n], &mut idx, &mut col);
        let cap1 = pool.iter().map(Tensor::capacity).sum::<usize>() * 4
            + idx.capacity() * 4
            + col.capacity() * 4;
        self.grew(cap1.saturating_sub(cap0));
        *self.scratch.borrow_mut() = pool;
        *self.argmax_u32.borrow_mut() = idx;
        *self.col.borrow_mut() = col;
        r
    }

    /// The current value of `v` (cloned out of the arena).
    ///
    /// # Panics
    ///
    /// Panics if `v` is from before the last [`InferCtx::reset`] and its
    /// slot has not been repopulated.
    pub fn value(&self, v: Val) -> Tensor {
        self.slots.borrow()[v.0].clone()
    }

    /// Runs one op: takes the next output slot out of the arena, hands the
    /// (immutably borrowed) live slots plus the output buffer to `f`, puts
    /// the result back, and tallies any allocation growth the op caused.
    fn emit(&self, f: impl FnOnce(&[Tensor], &mut Tensor)) -> Val {
        let idx = self.live.get();
        let mut out = {
            let mut slots = self.slots.borrow_mut();
            if slots.len() <= idx {
                slots.push(Tensor::default());
            }
            mem::take(&mut slots[idx])
        };
        let cap0 = out.capacity();
        {
            let slots = self.slots.borrow();
            f(&slots, &mut out);
        }
        crate::sanitize::check_finite("infer_op", &out);
        self.grew((out.capacity() - cap0) * 4);
        self.slots.borrow_mut()[idx] = out;
        self.live.set(idx + 1);
        Val(idx)
    }

    /// Records `bytes` of fresh allocation growth on the global
    /// `nn::infer_arena_bytes` counter. Zero in the steady state, so the
    /// atomic is only touched while the arena is still warming up.
    // rtt-lint: hot
    fn grew(&self, bytes: usize) {
        static ARENA_BYTES: rtt_obs::Counter = rtt_obs::Counter::new("nn::infer_arena_bytes");
        if bytes > 0 {
            ARENA_BYTES.add(bytes as u64);
        }
    }
}

/// The inference backend of the [`Exec`] abstraction: same kernels as the
/// tape, no gradient state, recycled buffers.
impl Exec for &InferCtx {
    type Value = Val;

    fn constant(self, t: Tensor) -> Val {
        self.emit(|_, out| out.copy_from(&t))
    }

    fn param(self, store: &ParamStore, id: ParamId) -> Val {
        self.emit(|_, out| out.copy_from(store.value(id)))
    }

    fn value(self, v: Val) -> Tensor {
        InferCtx::value(self, v)
    }

    fn len(self, v: Val) -> usize {
        self.slots.borrow()[v.0].len()
    }

    fn matmul(self, a: Val, b: Val) -> Val {
        self.emit(|s, out| ops::matmul(&s[a.0], &s[b.0], out))
    }

    fn add(self, a: Val, b: Val) -> Val {
        self.emit(|s, out| ops::add(&s[a.0], &s[b.0], out))
    }

    fn add_row(self, a: Val, row: Val) -> Val {
        self.emit(|s, out| ops::add_row(&s[a.0], &s[row.0], out))
    }

    fn add_channel(self, x: Val, bias: Val) -> Val {
        self.emit(|s, out| ops::add_channel(&s[x.0], &s[bias.0], out))
    }

    fn sub(self, a: Val, b: Val) -> Val {
        self.emit(|s, out| ops::sub(&s[a.0], &s[b.0], out))
    }

    fn mul(self, a: Val, b: Val) -> Val {
        self.emit(|s, out| ops::mul(&s[a.0], &s[b.0], out))
    }

    fn mul_row(self, a: Val, row: Val) -> Val {
        self.emit(|s, out| ops::mul_row(&s[a.0], &s[row.0], out))
    }

    fn scale(self, x: Val, sc: f32) -> Val {
        self.emit(|s, out| ops::scale(&s[x.0], sc, out))
    }

    fn relu(self, x: Val) -> Val {
        self.emit(|s, out| ops::relu(&s[x.0], out))
    }

    fn tanh(self, x: Val) -> Val {
        self.emit(|s, out| ops::tanh(&s[x.0], out))
    }

    fn reshape(self, x: Val, shape: &[usize]) -> Val {
        self.emit(|s, out| ops::reshape(&s[x.0], shape, out))
    }

    fn mean(self, x: Val) -> Val {
        self.emit(|s, out| ops::mean(&s[x.0], out))
    }

    fn gather_rows(self, x: Val, idx: &[u32]) -> Val {
        self.emit(|s, out| ops::gather_rows(&s[x.0], idx, out))
    }

    fn gather_multi(self, sources: &[Val], index: &[(u32, u32)]) -> Val {
        self.emit(|s, out| {
            let srcs: Vec<&Tensor> = sources.iter().map(|v| &s[v.0]).collect();
            ops::gather_multi(&srcs, index, out);
        })
    }

    fn segment_max(self, x: Val, seg: &[u32], num_segments: usize) -> Val {
        let mut argmax = self.argmax_i64.borrow_mut();
        let cap0 = argmax.capacity();
        let v = self.emit(|s, out| ops::segment_max(&s[x.0], seg, num_segments, out, &mut argmax));
        self.grew((argmax.capacity() - cap0) * 8);
        v
    }

    fn segment_sum(self, x: Val, seg: &[u32], num_segments: usize) -> Val {
        self.emit(|s, out| ops::segment_sum(&s[x.0], seg, num_segments, out))
    }

    fn scale_rows(self, x: Val, factors: &[f32]) -> Val {
        self.emit(|s, out| ops::scale_rows(&s[x.0], factors, out))
    }

    fn concat_rows(self, a: Val, b: Val) -> Val {
        self.emit(|s, out| ops::concat_rows(&s[a.0], &s[b.0], out))
    }

    fn concat_cols(self, a: Val, b: Val) -> Val {
        self.emit(|s, out| ops::concat_cols(&s[a.0], &s[b.0], out))
    }

    fn conv2d(self, x: Val, w: Val, pad: usize) -> Val {
        let mut col = self.col.borrow_mut();
        let cap0 = col.capacity();
        let v = self.emit(|s, out| ops::conv2d(&s[x.0], &s[w.0], pad, &mut col, out));
        self.grew((col.capacity() - cap0) * 4);
        v
    }

    fn maxpool2d(self, x: Val, size: usize) -> Val {
        let mut argmax = self.argmax_u32.borrow_mut();
        let cap0 = argmax.capacity();
        let v = self.emit(|s, out| ops::maxpool2d(&s[x.0], size, out, &mut argmax));
        self.grew((argmax.capacity() - cap0) * 4);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;

    fn t2(rows: &[&[f32]]) -> Tensor {
        Tensor::from_rows(rows)
    }

    /// Runs the same small op graph on a backend and returns the result.
    fn run_graph<E: Exec>(ex: E) -> Tensor {
        let a = ex.constant(t2(&[&[1.0, -2.0], &[3.0, 4.0]]));
        let b = ex.constant(t2(&[&[0.5, 1.0], &[-1.0, 2.0]]));
        let h = ex.relu(ex.add(ex.matmul(a, b), b));
        let g = ex.gather_rows(h, &[1, 0, 1]);
        let m = ex.segment_max(g, &[0, 0, 1], 2);
        ex.value(ex.tanh(m))
    }

    #[test]
    fn matches_tape_backend_and_reuses_buffers() {
        let tape = Tape::new();
        let want = run_graph(&tape);

        let ctx = InferCtx::new();
        let got = run_graph(&ctx);
        assert_eq!(got, want, "infer diverged from tape");

        // Second pass on the same ctx: identical output, zero slot growth.
        ctx.reset();
        let slots_after_first = ctx.slots.borrow().len();
        let got2 = run_graph(&ctx);
        assert_eq!(got2, want, "infer not reproducible after reset");
        assert_eq!(ctx.slots.borrow().len(), slots_after_first, "arena grew on replay");
    }

    #[test]
    fn conv_and_pool_match_tape() {
        let x = Tensor::from_vec(&[1, 4, 4], (0..16).map(|v| v as f32 * 0.25 - 1.0).collect());
        let w = Tensor::from_vec(&[2, 1, 3, 3], (0..18).map(|v| v as f32 * 0.1 - 0.9).collect());

        let tape = Tape::new();
        let ty =
            tape.maxpool2d(tape.conv2d(tape.constant(x.clone()), tape.constant(w.clone()), 1), 2);
        let want = tape.value(ty);

        let ctx = InferCtx::new();
        let cy = (&ctx).maxpool2d((&ctx).conv2d((&ctx).constant(x), (&ctx).constant(w), 1), 2);
        assert_eq!(ctx.value(cy), want);
    }

    #[test]
    fn arena_bytes_stop_growing_after_first_pass() {
        let ctx = InferCtx::new();
        run_graph(&ctx);
        let after_first = ctx.arena_bytes();
        assert!(after_first > 0, "first pass must allocate");
        for _ in 0..3 {
            ctx.reset();
            run_graph(&ctx);
        }
        assert_eq!(ctx.arena_bytes(), after_first, "steady-state pass allocated");
    }
}
