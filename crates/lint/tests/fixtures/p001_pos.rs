//! P001 positive: the hot kernel allocates — once directly, once
//! through a callee in the same file.

// rtt-lint: hot
pub fn kernel_fixture(v: &[f32]) -> Vec<f32> {
    let mut doubled = v.to_vec();
    grow(&mut doubled);
    doubled
}

fn grow(v: &mut Vec<f32>) {
    v.push(0.0);
}
