//! Dirty-cone incremental inference state.
//!
//! [`IncrementalCtx`] caches the flat GNN activation matrix (and the CNN
//! global map) of a *base* design. When the caller re-predicts after a
//! netlist transform, [`crate::TimingModel::predict_incremental`] seeds a
//! dirty set from the transform's touched pins, closes it over the
//! level-ordered fan-out cones, recomputes only the dirty rows, and
//! copies every clean row straight out of the cache — bit-identical to a
//! full pass, at cone-proportional cost. On success the cache *rebases*
//! to the just-predicted design, so an optimizer inner loop only ever
//! pays for the cone of its latest transform.
//!
//! Row matching across designs is keyed by [`PinId`] (stable under the
//! tombstoning edits of `rtt_netlist`), never by flat row number. The
//! caller's dirty seeds must cover **topology** changes (a pin whose
//! gather sources changed — `rtt_opt::dirty_seed_pins` derives exactly
//! that from a netlist diff); the context itself detects the rest:
//! unmapped rows (new pins), node-kind changes, and any bit-level static
//! feature change (which also covers placement moves of surviving
//! cells).
//!
//! The context also caches the per-endpoint readout-tail outputs, keyed
//! by endpoint pin. A cached prediction is reused only when every tail
//! input is bit-identical to the run that produced it: the endpoint's
//! flat row was *not* recomputed by the refresh, its sparse mask bins
//! are unchanged, and the CNN global map came from the cache — so reuse
//! is bit-exact by construction, not by tolerance.

use rtt_netlist::PinId;
use rtt_nn::{ParamStore, Tensor};

use crate::gnn::{GnnPlan, IncCompact, NetlistGnn};
use crate::{Aggregation, PreparedDesign};

/// Observability counter: flat GNN rows recomputed by the last
/// incremental refresh (a cold refresh counts every row).
pub const ROWS_RECOMPUTED_COUNTER: &str = "core::incremental_rows_recomputed";
/// Observability counter: total flat GNN rows seen by the last refresh.
pub const ROWS_TOTAL_COUNTER: &str = "core::incremental_rows_total";
/// Observability counter: endpoint predictions served from the
/// per-endpoint tail cache instead of recomputed.
pub const EPS_REUSED_COUNTER: &str = "core::incremental_eps_reused";
/// Observability counter: endpoint predictions requested from
/// [`crate::TimingModel::predict_incremental`].
pub const EPS_TOTAL_COUNTER: &str = "core::incremental_eps_total";

/// Node-kind tag per flat row (cell / net / source), used to detect kind
/// flips (e.g. a pin losing its driver turns `NetSink` into `Source`)
/// that a pure feature compare could miss.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RowKind {
    Cell,
    Net,
    Src,
}

/// Cached state for one base design (plus the reusable spare buffer the
/// next refresh writes into).
#[derive(Clone, Debug)]
pub(crate) struct BaseCache {
    /// `[total_rows, embed_dim]` flat activations of the base design.
    pub(crate) flat: Tensor,
    /// Swap target for the next refresh (recycled allocation).
    spare: Tensor,
    /// Pin index → base flat row (`u32::MAX` = pin absent).
    row_of_pin: Vec<u32>,
    /// Node kind per base flat row.
    row_kind: Vec<RowKind>,
    /// Static-feature row (into the matching feature matrix) per base
    /// flat row.
    row_feat: Vec<u32>,
    /// Clones of the base design's static feature matrices, kept for the
    /// bit-level feature compare against the next design.
    feat_cell_src: Option<Tensor>,
    feat_net: Option<Tensor>,
}

/// Cached readout-tail output for one endpoint: the prediction plus the
/// sparse mask bins it was computed under.
#[derive(Clone, Debug)]
pub(crate) struct EpEntry {
    pub(crate) val: f32,
    pub(crate) mask: Vec<u32>,
}

/// Reusable incremental-inference context. One per (model, design
/// lineage): reset it whenever the model weights change or prediction
/// moves to an unrelated design.
#[derive(Clone, Debug, Default)]
pub struct IncrementalCtx {
    cache: Option<BaseCache>,
    /// CNN global-map cache: valid while the design's layout maps are
    /// bit-identical to `maps_key`.
    gmap: Option<(Tensor, Tensor)>,
    /// Per-endpoint tail-output cache, indexed by endpoint pin index.
    /// Entries are invalidated when the pin's flat row goes dirty and
    /// wholesale when the global map recomputes.
    ep: Vec<Option<EpEntry>>,
    // Recycled index scratch.
    dirty: Vec<bool>,
    map_rows: Vec<u32>,
    row_of_pin_new: Vec<u32>,
    /// Recycled compacted dirty-row schedule (built here, outside the
    /// hot kernel, so the kernel itself never allocates).
    compact: IncCompact,
}

fn row_meta(plan: &GnnPlan) -> (Vec<RowKind>, Vec<u32>) {
    let mut kind = vec![RowKind::Cell; plan.total_rows];
    let mut feat = vec![0u32; plan.total_rows];
    for fl in &plan.levels {
        for j in 0..fl.n_cells {
            kind[fl.cell_dst[j] as usize] = RowKind::Cell;
            feat[fl.cell_dst[j] as usize] = (fl.cell_feat_off + j) as u32;
        }
        for j in 0..fl.n_nets {
            kind[fl.net_dst[j] as usize] = RowKind::Net;
            feat[fl.net_dst[j] as usize] = (fl.net_feat_off + j) as u32;
        }
        for j in 0..fl.n_srcs {
            kind[fl.src_dst[j] as usize] = RowKind::Src;
            feat[fl.src_dst[j] as usize] = (fl.src_feat_off + j) as u32;
        }
    }
    (kind, feat)
}

/// Bit-level row compare (`==` on f32 would call NaNs unequal even when
/// the recomputed value would be byte-identical).
fn rows_bit_eq(a: Option<&Tensor>, ra: u32, b: Option<&Tensor>, rb: u32) -> bool {
    match (a, b) {
        (Some(a), Some(b)) => {
            let (x, y) = (a.row(ra as usize), b.row(rb as usize));
            x.len() == y.len() && x.iter().zip(y).all(|(u, v)| u.to_bits() == v.to_bits())
        }
        _ => false,
    }
}

/// Bit-level whole-tensor compare (shape and every element).
fn feat_bits_eq(a: Option<&Tensor>, b: Option<&Tensor>) -> bool {
    match (a, b) {
        (Some(a), Some(b)) => {
            a.shape() == b.shape()
                && a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits())
        }
        (None, None) => true,
        _ => false,
    }
}

/// Clones `src` into `dst`, reusing `dst`'s allocation when possible.
fn clone_feat(dst: &mut Option<Tensor>, src: Option<&Tensor>) {
    match (dst.as_mut(), src) {
        (Some(d), Some(s)) => d.copy_from(s),
        (_, None) => *dst = None,
        (None, Some(s)) => *dst = Some(s.clone()),
    }
}

fn build_row_of_pin(pins: &[PinId], out: &mut Vec<u32>) {
    let cap = pins.iter().map(|p| p.index() + 1).max().unwrap_or(0);
    out.clear();
    out.resize(cap, u32::MAX);
    for (r, p) in pins.iter().enumerate() {
        out[p.index()] = r as u32;
    }
}

impl IncrementalCtx {
    /// A fresh (cold) context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all cached activations; the next prediction runs a full
    /// pass. Call after a weight reload or when switching to an
    /// unrelated design.
    pub fn reset(&mut self) {
        self.cache = None;
        self.gmap = None;
        self.ep.clear();
    }

    /// `true` once a base design's activations are cached.
    pub fn is_warm(&self) -> bool {
        self.cache.is_some()
    }

    /// Refreshes the cached flat GNN matrix for `design`, recomputing
    /// only the cones dirtied by `dirty_pins` (cold caches run one full
    /// pass). Rebases the cache onto `design` and returns the number of
    /// rows recomputed.
    pub(crate) fn refresh_gnn(
        &mut self,
        gnn: &NetlistGnn,
        store: &ParamStore,
        design: &PreparedDesign,
        aggregation: Aggregation,
        dirty_pins: &[PinId],
        bufs: &mut [Tensor],
    ) -> usize {
        let schedule = &design.schedule;
        let plan = schedule.plan();
        let n = plan.total_rows;
        let pins = schedule.flat_row_pins();
        let (new_kind, new_feat) = row_meta(plan);
        build_row_of_pin(pins, &mut self.row_of_pin_new);

        let recomputed = match &mut self.cache {
            None => {
                self.ep.clear();
                gnn.forward_flat(store, schedule, &design.feats, aggregation, bufs);
                let mut flat = Tensor::default();
                flat.copy_from(&bufs[0]);
                self.cache = Some(BaseCache {
                    flat,
                    spare: Tensor::default(),
                    row_of_pin: std::mem::take(&mut self.row_of_pin_new),
                    row_kind: new_kind,
                    row_feat: new_feat,
                    feat_cell_src: design.feats.cell_src_flat.clone(),
                    feat_net: design.feats.net_flat.clone(),
                });
                n
            }
            Some(cache) => {
                self.dirty.clear();
                self.dirty.resize(n, false);
                self.map_rows.clear();
                self.map_rows.resize(n, u32::MAX);
                // Fast path: when the pin map, node kinds, feature
                // indices, and feature bits all match the base exactly,
                // the per-row clean criterion below holds everywhere
                // with an identity map — skip the branchy row loop (and
                // the feature re-clone). This is the steady-state shape
                // of a daemon re-predicting an unchanged design.
                let same_structure = self.row_of_pin_new == cache.row_of_pin
                    && new_kind == cache.row_kind
                    && new_feat == cache.row_feat
                    && feat_bits_eq(
                        design.feats.cell_src_flat.as_ref(),
                        cache.feat_cell_src.as_ref(),
                    )
                    && feat_bits_eq(design.feats.net_flat.as_ref(), cache.feat_net.as_ref());
                if same_structure {
                    for (r, m) in self.map_rows.iter_mut().enumerate() {
                        *m = r as u32;
                    }
                } else {
                    // Map every new row to its base row by pin,
                    // auto-seeding rows that are new, changed kind, or
                    // changed features at the bit level.
                    for (r, p) in pins.iter().enumerate() {
                        let q = cache.row_of_pin.get(p.index()).copied().unwrap_or(u32::MAX);
                        let clean = q != u32::MAX && cache.row_kind[q as usize] == new_kind[r] && {
                            let (new_t, old_t) = match new_kind[r] {
                                RowKind::Net => {
                                    (design.feats.net_flat.as_ref(), cache.feat_net.as_ref())
                                }
                                _ => (
                                    design.feats.cell_src_flat.as_ref(),
                                    cache.feat_cell_src.as_ref(),
                                ),
                            };
                            rows_bit_eq(new_t, new_feat[r], old_t, cache.row_feat[q as usize])
                        };
                        if clean {
                            self.map_rows[r] = q;
                        } else {
                            self.dirty[r] = true;
                        }
                    }
                }
                // Caller-provided seeds: pins whose gather topology
                // changed (the part a row-local compare cannot see).
                for p in dirty_pins {
                    if let Some(&r) = self.row_of_pin_new.get(p.index()) {
                        if r != u32::MAX {
                            self.dirty[r as usize] = true;
                        }
                    }
                }
                let recomputed = schedule.propagate_dirty(&mut self.dirty);
                for (r, &d) in self.dirty.iter().enumerate() {
                    if d {
                        self.map_rows[r] = u32::MAX;
                        // A dirty row's activation may change, so any
                        // cached tail output reading it is stale. (Pins
                        // absent from this design keep their entries:
                        // reappearing as a live row forces that row
                        // dirty, which invalidates them right here.)
                        if let Some(slot) = self.ep.get_mut(pins[r].index()) {
                            *slot = None;
                        }
                    }
                }
                self.compact.build(plan, &self.dirty);
                gnn.forward_flat_incremental(
                    store,
                    schedule,
                    &design.feats,
                    aggregation,
                    &self.compact,
                    &self.map_rows,
                    &cache.flat,
                    &mut cache.spare,
                    bufs,
                );
                std::mem::swap(&mut cache.flat, &mut cache.spare);
                if !same_structure {
                    std::mem::swap(&mut cache.row_of_pin, &mut self.row_of_pin_new);
                    cache.row_kind = new_kind;
                    cache.row_feat = new_feat;
                    clone_feat(&mut cache.feat_cell_src, design.feats.cell_src_flat.as_ref());
                    clone_feat(&mut cache.feat_net, design.feats.net_flat.as_ref());
                }
                recomputed
            }
        };
        rtt_obs::add_many(&[
            (ROWS_RECOMPUTED_COUNTER, recomputed as u64),
            (ROWS_TOTAL_COUNTER, n as u64),
        ]);
        recomputed
    }

    /// The cached flat activation matrix (once warm).
    pub(crate) fn flat(&self) -> Option<&Tensor> {
        self.cache.as_ref().map(|c| &c.flat)
    }

    /// `true` when the cached CNN global map was computed from layout
    /// maps bit-identical to `maps`.
    pub(crate) fn gmap_matches(&self, maps: &Tensor) -> bool {
        self.gmap.as_ref().is_some_and(|(key, _)| {
            key.shape() == maps.shape()
                && key.data().iter().zip(maps.data()).all(|(a, b)| a.to_bits() == b.to_bits())
        })
    }

    /// Caches the CNN global map `gmap` keyed by the layout maps that
    /// produced it. Every cached endpoint output read the previous
    /// global map, so a recompute invalidates them all.
    pub(crate) fn set_gmap(&mut self, maps: &Tensor, gmap: &Tensor) {
        for e in &mut self.ep {
            *e = None;
        }
        match &mut self.gmap {
            Some((key, g)) => {
                key.copy_from(maps);
                g.copy_from(gmap);
            }
            slot => {
                let (mut key, mut g) = (Tensor::default(), Tensor::default());
                key.copy_from(maps);
                g.copy_from(gmap);
                *slot = Some((key, g));
            }
        }
    }

    /// The cached CNN global map, if any.
    pub(crate) fn gmap(&self) -> Option<&Tensor> {
        self.gmap.as_ref().map(|(_, g)| g)
    }

    /// The cached tail output for endpoint `pin`, if still valid.
    pub(crate) fn ep_get(&self, pin: PinId) -> Option<&EpEntry> {
        self.ep.get(pin.index()).and_then(|e| e.as_ref())
    }

    /// Caches endpoint `pin`'s tail output `val`, computed under the
    /// sparse `mask` bins (empty when masking is inactive).
    pub(crate) fn ep_put(&mut self, pin: PinId, val: f32, mask: &[u32]) {
        if self.ep.len() <= pin.index() {
            self.ep.resize(pin.index() + 1, None);
        }
        match &mut self.ep[pin.index()] {
            Some(e) => {
                e.val = val;
                e.mask.clear();
                e.mask.extend_from_slice(mask);
            }
            slot => *slot = Some(EpEntry { val, mask: mask.to_vec() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmap_cache_is_keyed_by_exact_map_bits() {
        let mut ctx = IncrementalCtx::new();
        let maps = Tensor::from_vec(&[1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let gmap = Tensor::from_vec(&[1, 2], vec![9.0, 8.0]);
        assert!(!ctx.gmap_matches(&maps));
        ctx.set_gmap(&maps, &gmap);
        assert!(ctx.gmap_matches(&maps));
        assert_eq!(ctx.gmap().unwrap().data(), &[9.0, 8.0]);
        let moved = Tensor::from_vec(&[1, 4], vec![1.0, 2.0, 3.0, 4.5]);
        assert!(!ctx.gmap_matches(&moved), "any map change must invalidate the global map");
        ctx.reset();
        assert!(!ctx.gmap_matches(&maps));
        assert!(!ctx.is_warm());
    }
}
