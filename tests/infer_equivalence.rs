//! Bit-equality of the tape-free inference backend against the tape path.
//!
//! `TimingModel::predict` (and the baselines' predict paths) run on
//! [`rtt_nn::InferCtx`]; the tape-backed reference implementations are kept
//! as `predict_taped` / `predict_endpoints_taped`. Both backends execute
//! the same `rtt_nn::ops` kernels in the same order, so their outputs must
//! agree to the bit — for every model variant, at tiny and small model
//! scales, and for any thread count. The batched entry points
//! (`predict_batch` at batch sizes 1, 7, and all endpoints, and
//! `predict_many`) must land on the same bits as the single-design
//! `predict` and taped references.
//!
//! Thread settings are process-global, so everything runs inside a single
//! `#[test]` that switches `RTT_THREADS`-equivalent state serially.

use std::collections::HashMap;

use restructure_timing::baselines::{
    BaselineInputs, GuoConfig, GuoModel, TwoStageKind, TwoStageModel,
};
use restructure_timing::flow::{Dataset, DesignData, FlowConfig};
use restructure_timing::netlist::PinId;
use restructure_timing::nn::{parallel, InferCtx};
use restructure_timing::prelude::*;

fn assert_bits_eq(what: &str, a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "{what}: prediction counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}: prediction {i} differs: {x:?} (0x{:08x}) vs {y:?} (0x{:08x})",
            x.to_bits(),
            y.to_bits()
        );
    }
}

/// Owned label bundle backing a [`BaselineInputs`] view.
struct Labels {
    nets: HashMap<(PinId, PinId), f32>,
    cells: HashMap<(PinId, PinId), f32>,
    arrivals: HashMap<PinId, f32>,
    endpoints: Vec<f32>,
}

impl Labels {
    fn of(d: &DesignData) -> Self {
        Self {
            nets: d.surviving_net_delays(),
            cells: d.surviving_cell_delays(),
            arrivals: d.surviving_arrivals(),
            endpoints: d.endpoint_targets(),
        }
    }

    fn inputs<'a>(&'a self, d: &'a DesignData, lib: &'a CellLibrary) -> BaselineInputs<'a> {
        d.baseline_inputs(lib, &self.nets, &self.cells, &self.arrivals, &self.endpoints)
    }
}

#[test]
fn tape_free_predict_is_bit_identical_to_taped() {
    let cfg = FlowConfig { scale: Scale::Tiny, ..FlowConfig::default() };
    let ds = Dataset::generate_subset(&cfg, 1, 1);
    let lib = &ds.library;
    let d_train = ds.train_designs()[0];
    let d_test = ds.test_designs()[0];
    let train_labels = Labels::of(d_train);
    let test_labels = Labels::of(d_test);

    // Baselines, trained briefly so weights (and normalizations) are
    // nontrivial.
    let train_inputs = train_labels.inputs(d_train, lib);
    let mut dac19 = TwoStageModel::new(TwoStageKind::Dac19, 1);
    dac19.train(&[&train_inputs], 20, 2e-3);
    let mut he = TwoStageModel::new(TwoStageKind::Dac22He, 2);
    he.train(&[&train_inputs], 20, 2e-3);
    let mut guo = GuoModel::new(GuoConfig::default());
    guo.train(&[&train_inputs], 2, 2e-3);

    // Our model: every variant at the tiny scale, plus the full model at
    // the small scale (different widths, grid, and pooling extents).
    let variants = [
        ("tiny/full", ModelConfig::tiny()),
        ("tiny/gnn-only", ModelConfig::tiny().with_variant(ModelVariant::GnnOnly)),
        ("tiny/cnn-only", ModelConfig::tiny().with_variant(ModelVariant::CnnOnly)),
        ("small/full", ModelConfig::small()),
    ];
    let models: Vec<(&str, TimingModel, PreparedDesign)> = variants
        .into_iter()
        .map(|(name, mc)| {
            let train_prep = d_train.prepared(lib, &mc);
            let mut model = TimingModel::new(mc.clone());
            model.train(
                std::slice::from_ref(&train_prep),
                &TrainConfig { epochs: 2, ..TrainConfig::default() },
            );
            let test_prep = d_test.prepared(lib, &mc);
            (name, model, test_prep)
        })
        .collect();

    // Kernels are bit-identical across thread counts, so predictions from
    // different RTT_THREADS settings must also agree bit-for-bit.
    let mut across_threads: Vec<Vec<Vec<f32>>> = Vec::new();
    for threads in [1usize, 4] {
        parallel::set_num_threads(threads);
        let mut this_round = Vec::new();
        for (name, model, prep) in &models {
            let infer = model.predict(prep);
            let taped = model.predict_taped(prep);
            assert_bits_eq(&format!("{name} @ {threads} threads"), &infer, &taped);

            // Batched prediction through a persistent context must agree
            // with both reference paths at every batch size: the shared
            // GNN/CNN activations and the row-wise regressor make each
            // endpoint's arithmetic independent of its batch neighbors.
            let ctx = InferCtx::new();
            let all: Vec<u32> = (0..prep.num_endpoints() as u32).collect();
            let whole = model.predict_batch(&ctx, prep, &all);
            assert_bits_eq(
                &format!("{name} predict_batch(all) @ {threads} threads"),
                &whole,
                &taped,
            );
            let by_seven: Vec<f32> =
                all.chunks(7).flat_map(|c| model.predict_batch(&ctx, prep, c)).collect();
            assert_bits_eq(
                &format!("{name} predict_batch(7) @ {threads} threads"),
                &by_seven,
                &taped,
            );
            let by_one: Vec<f32> =
                all.iter().flat_map(|&i| model.predict_batch(&ctx, prep, &[i])).collect();
            assert_bits_eq(
                &format!("{name} predict_batch(1) @ {threads} threads"),
                &by_one,
                &taped,
            );
            let many = model.predict_many(&ctx, &[prep, prep]);
            for (k, got) in many.iter().enumerate() {
                assert_bits_eq(
                    &format!("{name} predict_many[{k}] @ {threads} threads"),
                    got,
                    &taped,
                );
            }

            this_round.push(infer);
        }
        let test_inputs = test_labels.inputs(d_test, lib);
        for (name, infer, taped) in [
            (
                "DAC19",
                dac19.predict_endpoints(&test_inputs),
                dac19.predict_endpoints_taped(&test_inputs),
            ),
            (
                "DAC22-he",
                he.predict_endpoints(&test_inputs),
                he.predict_endpoints_taped(&test_inputs),
            ),
            ("guo", guo.predict_endpoints(&test_inputs), guo.predict_endpoints_taped(&test_inputs)),
        ] {
            assert_bits_eq(&format!("{name} @ {threads} threads"), &infer, &taped);
            this_round.push(infer);
        }
        across_threads.push(this_round);
    }
    parallel::set_num_threads(1);
    for (i, (a, b)) in across_threads[0].iter().zip(&across_threads[1]).enumerate() {
        assert_bits_eq(&format!("model/baseline {i} across thread counts"), a, b);
    }
}

/// Nightly inference micro-benchmark: the tape-free backend must allocate
/// strictly less than the tape path appends, and should be faster.
///
/// Timing is reported but not asserted (CI machines are noisy); the
/// allocation comparison is exact and asserted. Run with:
///
/// ```text
/// cargo test --release --test infer_equivalence -- --ignored
/// ```
#[test]
#[ignore = "nightly micro-bench; run explicitly with -- --ignored"]
fn inference_microbench_arena_beats_tape() {
    use restructure_timing::obs;

    let cfg = FlowConfig { scale: Scale::Tiny, ..FlowConfig::default() };
    let ds = Dataset::generate_subset(&cfg, 1, 1);
    let mc = ModelConfig::small();
    let prep = ds.test_designs()[0].prepared(&ds.library, &mc);
    let model = TimingModel::new(mc);
    let iters = 5;

    // A serving loop holds one context so the arena persists across
    // passes; warm up both paths before measuring.
    let ctx = restructure_timing::nn::InferCtx::new();
    let _ = model.predict_with(&ctx, &prep);
    let _ = model.predict_taped(&prep);

    obs::reset();
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        let _ = model.predict_taped(&prep);
    }
    let taped_s = t0.elapsed().as_secs_f64();
    let tape_bytes = obs::snapshot().counters.get("nn::tape_bytes").copied().unwrap_or(0);

    obs::reset();
    let t1 = std::time::Instant::now();
    for _ in 0..iters {
        let _ = model.predict_with(&ctx, &prep);
    }
    let infer_s = t1.elapsed().as_secs_f64();
    let arena_bytes = obs::snapshot().counters.get("nn::infer_arena_bytes").copied().unwrap_or(0);

    let eps = prep.num_endpoints() as f64 * iters as f64;
    eprintln!(
        "inference micro-bench: taped {taped_s:.3}s ({:.0} ep/s, {tape_bytes} tape bytes) vs \
         tape-free {infer_s:.3}s ({:.0} ep/s, {arena_bytes} bytes allocated, \
         {} bytes resident), speedup {:.2}x",
        eps / taped_s.max(1e-9),
        eps / infer_s.max(1e-9),
        ctx.arena_bytes(),
        taped_s / infer_s.max(1e-9),
    );
    assert!(tape_bytes > 0, "taped reference did not record nn::tape_bytes");
    assert!(
        arena_bytes < tape_bytes,
        "arena allocated {arena_bytes} bytes, tape appended {tape_bytes}"
    );
}
