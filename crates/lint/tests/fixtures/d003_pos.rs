// D003 positive: exact float comparisons.
pub fn is_zero(x: f32) -> bool {
    x == 0.0
}

pub fn not_one(x: f64) -> bool {
    x != 1.0
}

pub fn unreached(best: f32) -> bool {
    best == f32::NEG_INFINITY
}

pub fn saturated(x: f32) -> bool {
    f32::INFINITY == x
}
