//! Mutable gate-level netlist with stable ids and tombstoning removal.
//!
//! The timing optimizer restructures netlists (buffer insertion, gate
//! decomposition, rewrites). To let the flow layer compute the paper's
//! Table I replacement statistics by *diffing* the optimized netlist against
//! the pre-optimization input, removals never re-index: entities are
//! tombstoned and surviving entities keep their ids.

use crate::{CellId, CellLibrary, CellTypeId, NetId, NetlistError, PinId};

/// Signal-flow direction of a pin.
///
/// Top-level input ports and cell output pins *drive* nets; top-level output
/// ports and cell input pins *sink* them. Using flow direction (rather than
/// cell-relative direction) keeps net construction uniform for ports and
/// cells.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PinDir {
    /// Sources a net (cell output pin or primary input port).
    Drive,
    /// Loads a net (cell input pin or primary output port).
    Sink,
}

/// Top-level port classification of a pin, if it is a port.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PortKind {
    /// Primary input (timing start point).
    Input,
    /// Primary output (timing endpoint).
    Output,
}

/// A pin: a cell terminal or a top-level port.
#[derive(Clone, Debug)]
pub struct Pin {
    /// Hierarchical-ish name, unique within the netlist.
    pub name: String,
    /// Signal-flow direction.
    pub dir: PinDir,
    /// Owning cell, or `None` for top-level ports.
    pub cell: Option<CellId>,
    /// Net this pin is attached to, if any.
    pub net: Option<NetId>,
    /// Port classification, or `None` for cell pins.
    pub port: Option<PortKind>,
    pub(crate) alive: bool,
}

impl Pin {
    /// `true` until the pin's owner is removed.
    pub fn is_alive(&self) -> bool {
        self.alive
    }
}

/// A standard-cell instance.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Instance name, unique within the netlist.
    pub name: String,
    /// Cell master in the library.
    pub type_id: CellTypeId,
    /// Input pins, in library pin order.
    pub inputs: Vec<PinId>,
    /// Output pin.
    pub output: PinId,
    pub(crate) alive: bool,
}

impl Cell {
    /// `true` until the cell is removed.
    pub fn is_alive(&self) -> bool {
        self.alive
    }
}

/// A net: one driver pin and one or more sink pins.
#[derive(Clone, Debug)]
pub struct Net {
    /// Net name, unique within the netlist.
    pub name: String,
    /// Driving pin.
    pub driver: PinId,
    /// Sink pins (order is not significant).
    pub sinks: Vec<PinId>,
    pub(crate) alive: bool,
}

impl Net {
    /// `true` until the net is removed.
    pub fn is_alive(&self) -> bool {
        self.alive
    }
}

/// A mutable gate-level netlist.
///
/// See the [crate-level documentation](crate) for a construction example.
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    /// Design name.
    pub name: String,
    pins: Vec<Pin>,
    cells: Vec<Cell>,
    nets: Vec<Net>,
    input_ports: Vec<PinId>,
    output_ports: Vec<PinId>,
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), ..Self::default() }
    }

    // ---- entity accessors -------------------------------------------------

    /// Returns the pin with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn pin(&self, id: PinId) -> &Pin {
        &self.pins[id.index()]
    }

    /// Returns the cell with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Returns the net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Total pin slots, including tombstoned pins.
    pub fn pin_capacity(&self) -> usize {
        self.pins.len()
    }

    /// Total cell slots, including tombstoned cells.
    pub fn cell_capacity(&self) -> usize {
        self.cells.len()
    }

    /// Total net slots, including tombstoned nets.
    pub fn net_capacity(&self) -> usize {
        self.nets.len()
    }

    /// Iterates over live pins as `(id, pin)`.
    pub fn pins(&self) -> impl Iterator<Item = (PinId, &Pin)> {
        self.pins
            .iter()
            .enumerate()
            .filter(|(_, p)| p.alive)
            .map(|(i, p)| (PinId::from_index(i), p))
    }

    /// Iterates over live cells as `(id, cell)`.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.alive)
            .map(|(i, c)| (CellId::from_index(i), c))
    }

    /// Iterates over live nets as `(id, net)`.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, n)| (NetId::from_index(i), n))
    }

    /// Number of live pins.
    pub fn num_pins(&self) -> usize {
        self.pins.iter().filter(|p| p.alive).count()
    }

    /// Number of live cells.
    pub fn num_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.alive).count()
    }

    /// Number of live nets.
    pub fn num_nets(&self) -> usize {
        self.nets.iter().filter(|n| n.alive).count()
    }

    /// Primary input ports.
    pub fn input_ports(&self) -> &[PinId] {
        &self.input_ports
    }

    /// Primary output ports.
    pub fn output_ports(&self) -> &[PinId] {
        &self.output_ports
    }

    // ---- construction -----------------------------------------------------

    fn push_pin(&mut self, pin: Pin) -> PinId {
        let id = PinId::from_index(self.pins.len());
        self.pins.push(pin);
        id
    }

    /// Adds a primary input port and returns its pin id.
    pub fn add_input_port(&mut self, name: impl Into<String>) -> PinId {
        let id = self.push_pin(Pin {
            name: name.into(),
            dir: PinDir::Drive,
            cell: None,
            net: None,
            port: Some(PortKind::Input),
            alive: true,
        });
        self.input_ports.push(id);
        id
    }

    /// Adds a primary output port and returns its pin id.
    pub fn add_output_port(&mut self, name: impl Into<String>) -> PinId {
        let id = self.push_pin(Pin {
            name: name.into(),
            dir: PinDir::Sink,
            cell: None,
            net: None,
            port: Some(PortKind::Output),
            alive: true,
        });
        self.output_ports.push(id);
        id
    }

    /// Adds a cell instance of `type_id`, creating its pins.
    ///
    /// Returns the cell id and the output pin id (inputs are reachable via
    /// [`Cell::inputs`]).
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        type_id: CellTypeId,
        library: &CellLibrary,
    ) -> (CellId, PinId) {
        let name = name.into();
        let cell_id = CellId::from_index(self.cells.len());
        let ty = library.cell_type(type_id);
        let mut inputs = Vec::with_capacity(ty.num_inputs());
        for i in 0..ty.num_inputs() {
            inputs.push(self.push_pin(Pin {
                name: format!("{name}/i{i}"),
                dir: PinDir::Sink,
                cell: Some(cell_id),
                net: None,
                port: None,
                alive: true,
            }));
        }
        let output = self.push_pin(Pin {
            name: format!("{name}/o"),
            dir: PinDir::Drive,
            cell: Some(cell_id),
            net: None,
            port: None,
            alive: true,
        });
        self.cells.push(Cell { name, type_id, inputs, output, alive: true });
        (cell_id, output)
    }

    /// Creates a net from `driver` to `sinks`.
    ///
    /// # Errors
    ///
    /// Returns an error if the driver already drives a net, a sink is already
    /// connected, a pin direction is wrong, or `sinks` is empty.
    pub fn connect_net(
        &mut self,
        name: impl Into<String>,
        driver: PinId,
        sinks: &[PinId],
    ) -> Result<NetId, NetlistError> {
        let net_id = NetId::from_index(self.nets.len());
        if sinks.is_empty() {
            return Err(NetlistError::EmptyNet(net_id));
        }
        {
            let d = self.pin(driver);
            if d.dir != PinDir::Drive {
                return Err(NetlistError::DirectionMismatch(driver));
            }
            if d.net.is_some() {
                return Err(NetlistError::DriverAlreadyConnected(driver));
            }
        }
        for &s in sinks {
            let p = self.pin(s);
            if p.dir != PinDir::Sink {
                return Err(NetlistError::DirectionMismatch(s));
            }
            if p.net.is_some() {
                return Err(NetlistError::SinkAlreadyConnected(s));
            }
        }
        self.pins[driver.index()].net = Some(net_id);
        for &s in sinks {
            self.pins[s.index()].net = Some(net_id);
        }
        self.nets.push(Net { name: name.into(), driver, sinks: sinks.to_vec(), alive: true });
        Ok(net_id)
    }

    // ---- mutation (used by the timing optimizer) ---------------------------

    /// Detaches `sink` from `net`.
    ///
    /// # Errors
    ///
    /// Returns an error if `sink` is not a sink of `net` or the net is dead.
    pub fn disconnect_sink(&mut self, net: NetId, sink: PinId) -> Result<(), NetlistError> {
        if !self.nets[net.index()].alive {
            return Err(NetlistError::Dead("net", net.0));
        }
        let n = &mut self.nets[net.index()];
        let before = n.sinks.len();
        n.sinks.retain(|&p| p != sink);
        if n.sinks.len() == before {
            return Err(NetlistError::DirectionMismatch(sink));
        }
        self.pins[sink.index()].net = None;
        Ok(())
    }

    /// Attaches `sink` to an existing `net`.
    ///
    /// # Errors
    ///
    /// Returns an error if the sink is already connected, has the wrong
    /// direction, or the net is dead.
    pub fn add_sink(&mut self, net: NetId, sink: PinId) -> Result<(), NetlistError> {
        if !self.nets[net.index()].alive {
            return Err(NetlistError::Dead("net", net.0));
        }
        let p = self.pin(sink);
        if p.dir != PinDir::Sink {
            return Err(NetlistError::DirectionMismatch(sink));
        }
        if p.net.is_some() {
            return Err(NetlistError::SinkAlreadyConnected(sink));
        }
        self.pins[sink.index()].net = Some(net);
        self.nets[net.index()].sinks.push(sink);
        Ok(())
    }

    /// Removes a net, detaching its driver and all sinks.
    ///
    /// # Errors
    ///
    /// Returns an error if the net is already dead.
    pub fn remove_net(&mut self, net: NetId) -> Result<(), NetlistError> {
        if !self.nets[net.index()].alive {
            return Err(NetlistError::Dead("net", net.0));
        }
        let (driver, sinks) = {
            let n = &self.nets[net.index()];
            (n.driver, n.sinks.clone())
        };
        self.pins[driver.index()].net = None;
        for s in sinks {
            self.pins[s.index()].net = None;
        }
        self.nets[net.index()].alive = false;
        Ok(())
    }

    /// Removes a cell and tombstones its pins.
    ///
    /// All of the cell's pins must be disconnected first.
    ///
    /// # Errors
    ///
    /// Returns an error if the cell is dead or any pin is still connected.
    pub fn remove_cell(&mut self, cell: CellId) -> Result<(), NetlistError> {
        if !self.cells[cell.index()].alive {
            return Err(NetlistError::Dead("cell", cell.0));
        }
        let pins: Vec<PinId> = {
            let c = &self.cells[cell.index()];
            c.inputs.iter().copied().chain(std::iter::once(c.output)).collect()
        };
        for &p in &pins {
            if self.pins[p.index()].net.is_some() {
                return Err(NetlistError::SinkAlreadyConnected(p));
            }
        }
        for p in pins {
            self.pins[p.index()].alive = false;
        }
        self.cells[cell.index()].alive = false;
        Ok(())
    }

    /// Changes the master of `cell` to another drive strength of the *same*
    /// gate function (the structure-preserved "gate sizing" transform).
    ///
    /// # Errors
    ///
    /// Returns an error if the new type implements a different function or
    /// the cell is dead.
    pub fn resize_cell(
        &mut self,
        cell: CellId,
        new_type: CellTypeId,
        library: &CellLibrary,
    ) -> Result<(), NetlistError> {
        if !self.cells[cell.index()].alive {
            return Err(NetlistError::Dead("cell", cell.0));
        }
        let old = library.cell_type(self.cells[cell.index()].type_id);
        let new = library.cell_type(new_type);
        if old.gate != new.gate {
            return Err(NetlistError::ResizeChangesFunction(cell));
        }
        self.cells[cell.index()].type_id = new_type;
        Ok(())
    }

    /// Moves `sink` from its current net onto `to_net`.
    ///
    /// # Errors
    ///
    /// Propagates errors from [`Self::disconnect_sink`] / [`Self::add_sink`];
    /// returns a direction error if `sink` is currently unconnected.
    pub fn move_sink(&mut self, sink: PinId, to_net: NetId) -> Result<(), NetlistError> {
        let from = self.pin(sink).net.ok_or(NetlistError::DirectionMismatch(sink))?;
        self.disconnect_sink(from, sink)?;
        self.add_sink(to_net, sink)
    }

    // ---- validation ---------------------------------------------------------

    /// Checks structural invariants: live nets have live, correctly-directed,
    /// back-referencing pins; live cell pins reference their cell.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (nid, n) in self.nets() {
            if n.sinks.is_empty() {
                return Err(NetlistError::EmptyNet(nid));
            }
            let d = self.pin(n.driver);
            if !d.alive {
                return Err(NetlistError::Dead("pin", n.driver.0));
            }
            if d.dir != PinDir::Drive || d.net != Some(nid) {
                return Err(NetlistError::DirectionMismatch(n.driver));
            }
            for &s in &n.sinks {
                let p = self.pin(s);
                if !p.alive {
                    return Err(NetlistError::Dead("pin", s.0));
                }
                if p.dir != PinDir::Sink || p.net != Some(nid) {
                    return Err(NetlistError::DirectionMismatch(s));
                }
            }
        }
        for (cid, c) in self.cells() {
            for &p in c.inputs.iter().chain(std::iter::once(&c.output)) {
                let pin = self.pin(p);
                if !pin.alive {
                    return Err(NetlistError::Dead("pin", p.0));
                }
                if pin.cell != Some(cid) {
                    return Err(NetlistError::DirectionMismatch(p));
                }
            }
        }
        Ok(())
    }

    /// Sum of live cell areas in µm², using `library` masters.
    pub fn total_cell_area(&self, library: &CellLibrary) -> f64 {
        self.cells().map(|(_, c)| f64::from(library.cell_type(c.type_id).area_um2)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateFn;

    fn tiny() -> (CellLibrary, Netlist, CellId, PinId, NetId) {
        let lib = CellLibrary::asap7_like();
        let mut nl = Netlist::new("t");
        let a = nl.add_input_port("a");
        let b = nl.add_input_port("b");
        let t = lib.pick(GateFn::And2, 1).unwrap();
        let (c, co) = nl.add_cell("u0", t, &lib);
        let i0 = nl.cell(c).inputs[0];
        let i1 = nl.cell(c).inputs[1];
        nl.connect_net("na", a, &[i0]).unwrap();
        nl.connect_net("nb", b, &[i1]).unwrap();
        let y = nl.add_output_port("y");
        let ny = nl.connect_net("ny", co, &[y]).unwrap();
        (lib, nl, c, co, ny)
    }

    #[test]
    fn build_and_validate() {
        let (_, nl, ..) = tiny();
        nl.validate().unwrap();
        assert_eq!(nl.num_cells(), 1);
        assert_eq!(nl.num_nets(), 3);
        assert_eq!(nl.num_pins(), 6); // 2 in ports + 1 out port + 3 cell pins
        assert_eq!(nl.input_ports().len(), 2);
        assert_eq!(nl.output_ports().len(), 1);
    }

    #[test]
    fn double_connection_is_rejected() {
        let (lib, mut nl, c, co, _) = tiny();
        let i0 = nl.cell(c).inputs[0];
        assert_eq!(nl.connect_net("dup", co, &[i0]), Err(NetlistError::DriverAlreadyConnected(co)));
        let t = lib.pick(GateFn::Inv, 1).unwrap();
        let (_, o2) = nl.add_cell("u1", t, &lib);
        assert_eq!(nl.connect_net("dup2", o2, &[i0]), Err(NetlistError::SinkAlreadyConnected(i0)));
    }

    #[test]
    fn direction_is_enforced() {
        let (lib, mut nl, c, _, _) = tiny();
        let i0 = nl.cell(c).inputs[0];
        let t = lib.pick(GateFn::Inv, 1).unwrap();
        let (c2, o2) = nl.add_cell("u1", t, &lib);
        let i2 = nl.cell(c2).inputs[0];
        // input pin used as driver
        assert_eq!(nl.connect_net("bad", i0, &[i2]), Err(NetlistError::DirectionMismatch(i0)));
        // output pin used as sink
        assert!(matches!(
            nl.connect_net("bad2", o2, &[o2]),
            Err(NetlistError::DirectionMismatch(_))
        ));
    }

    #[test]
    fn empty_net_is_rejected() {
        let (_, mut nl, _, co, ny) = tiny();
        nl.remove_net(ny).unwrap();
        assert!(matches!(nl.connect_net("e", co, &[]), Err(NetlistError::EmptyNet(_))));
    }

    #[test]
    fn remove_net_detaches_pins() {
        let (_, mut nl, _, co, ny) = tiny();
        nl.remove_net(ny).unwrap();
        assert_eq!(nl.pin(co).net, None);
        assert!(!nl.net(ny).is_alive());
        assert_eq!(nl.remove_net(ny), Err(NetlistError::Dead("net", ny.0)));
        nl.validate().unwrap();
    }

    #[test]
    fn remove_cell_requires_disconnection_and_tombstones_pins() {
        let (_, mut nl, c, co, ny) = tiny();
        assert!(nl.remove_cell(c).is_err()); // still connected
                                             // Disconnect everything touching the cell.
        let i0 = nl.cell(c).inputs[0];
        let i1 = nl.cell(c).inputs[1];
        let n0 = nl.pin(i0).net.unwrap();
        let n1 = nl.pin(i1).net.unwrap();
        nl.remove_net(n0).unwrap();
        nl.remove_net(n1).unwrap();
        nl.remove_net(ny).unwrap();
        nl.remove_cell(c).unwrap();
        assert!(!nl.cell(c).is_alive());
        assert!(!nl.pin(co).is_alive());
        assert_eq!(nl.num_cells(), 0);
        nl.validate().unwrap();
    }

    #[test]
    fn resize_keeps_function() {
        let (lib, mut nl, c, _, _) = tiny();
        let and2_x4 = lib.pick(GateFn::And2, 4).unwrap();
        nl.resize_cell(c, and2_x4, &lib).unwrap();
        assert_eq!(nl.cell(c).type_id, and2_x4);
        let inv = lib.pick(GateFn::Inv, 1).unwrap();
        assert_eq!(nl.resize_cell(c, inv, &lib), Err(NetlistError::ResizeChangesFunction(c)));
    }

    #[test]
    fn move_sink_rewires() {
        let (lib, mut nl, c, _, _) = tiny();
        let i1 = nl.cell(c).inputs[1];
        // New buffer driven by port a's net... simpler: new net from a fresh port.
        let p = nl.add_input_port("x");
        let t = lib.pick(GateFn::Buf, 1).unwrap();
        let (bc, bo) = nl.add_cell("ub", t, &lib);
        let bi = nl.cell(bc).inputs[0];
        nl.connect_net("nx", p, &[bi]).unwrap();
        let dummy = nl.add_output_port("d");
        let nb = nl.connect_net("nbuf", bo, &[dummy]).unwrap();
        let old_net = nl.pin(i1).net.unwrap();
        nl.move_sink(i1, nb).unwrap();
        assert_eq!(nl.pin(i1).net, Some(nb));
        assert_eq!(nl.net(nb).sinks.len(), 2);
        // The vacated net is now empty; validation flags it until removed.
        assert_eq!(nl.validate(), Err(NetlistError::EmptyNet(old_net)));
        nl.remove_net(old_net).unwrap();
        nl.validate().unwrap();
    }

    #[test]
    fn ids_stay_stable_after_removal() {
        let (_, mut nl, c, co, ny) = tiny();
        let name_before = nl.cell(c).name.clone();
        nl.remove_net(ny).unwrap();
        // Cell id still resolves to the same instance.
        assert_eq!(nl.cell(c).name, name_before);
        assert_eq!(nl.pin(co).cell, Some(c));
    }

    #[test]
    fn area_scales_with_resize() {
        let (lib, mut nl, c, _, _) = tiny();
        let a1 = nl.total_cell_area(&lib);
        nl.resize_cell(c, lib.pick(GateFn::And2, 8).unwrap(), &lib).unwrap();
        assert!(nl.total_cell_area(&lib) > a1);
    }
}
