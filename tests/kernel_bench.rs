//! Nightly kernel micro-benchmarks for the batched inference path.
//!
//! Run with:
//!
//! ```text
//! cargo test --release --test kernel_bench -- --ignored --nocapture
//! ```
//!
//! The batched-vs-single-endpoint comparison is asserted: batching shares
//! one GNN/CNN pass across endpoints, so batched endpoints/sec must be at
//! least the single-endpoint rate. Kernel timings are reported but not
//! asserted (CI machines are noisy); the CSR kernels' bit-equality against
//! the legacy per-row segment ops is exact and asserted.

use std::time::Instant;

use restructure_timing::nn::{ops, InferCtx, Tensor};
use restructure_timing::prelude::*;

/// Median wall-clock seconds over `reps` runs of `f`.
fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn assert_tensor_bits_eq(what: &str, a: &Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape(), "{what}: shapes differ");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}: element {i} differs: {x:?} (0x{:08x}) vs {y:?} (0x{:08x})",
            x.to_bits(),
            y.to_bits()
        );
    }
}

/// The perfsuite's 2000-cell design under the small (paper-ish) config.
fn bench_design() -> (PreparedDesign, TimingModel) {
    let lib = CellLibrary::asap7_like();
    let cfg = ModelConfig::small();
    let d = GenParams::new("kbench", 2000, 21).generate(&lib);
    let pl = place(&d.netlist, &lib, 0, &PlaceConfig::default());
    let rt = route(&d.netlist, &lib, &pl, &RouteConfig::default());
    let graph = TimingGraph::build(&d.netlist, &lib);
    let sta = run_sta(&d.netlist, &lib, &graph, WireModel::Routed(&rt), 500.0);
    let targets = sta.endpoint_arrivals().iter().map(|&(_, a)| a).collect();
    let prep = PreparedDesign::prepare(&d.netlist, &lib, &pl, &graph, &cfg, targets);
    (prep, TimingModel::new(cfg))
}

/// Batched serving must be at least as fast per endpoint as calling
/// `predict_batch` once per endpoint: every call pays one full GNN+CNN
/// pass, batching amortizes it.
#[test]
#[ignore = "nightly micro-bench; run explicitly with -- --ignored"]
fn batched_inference_beats_single_endpoint() {
    let (prep, model) = bench_design();
    let n = prep.num_endpoints();
    let all: Vec<u32> = (0..n as u32).collect();
    let ctx = InferCtx::new();
    let _ = model.predict_batch(&ctx, &prep, &all); // warm the arena
    let _ = model.predict_batch(&ctx, &prep, &[0]);

    let batched_s = time_median(5, || model.predict_batch(&ctx, &prep, &all));
    let single_s = time_median(3, || {
        for &i in &all {
            std::hint::black_box(model.predict_batch(&ctx, &prep, &[i]));
        }
    });
    let batched_eps = n as f64 / batched_s.max(1e-12);
    let single_eps = n as f64 / single_s.max(1e-12);
    eprintln!(
        "batched {batched_eps:.0} ep/s vs single-endpoint {single_eps:.0} ep/s \
         ({n} endpoints, amortization {:.1}x)",
        batched_eps / single_eps.max(1e-12)
    );
    assert!(
        batched_eps >= single_eps,
        "batched serving ({batched_eps:.0} ep/s) slower than per-endpoint calls \
         ({single_eps:.0} ep/s)"
    );
}

/// The branch-free CSR segment kernels and the flat gather must land on
/// exactly the bits of the legacy per-row ops they replaced.
#[test]
#[ignore = "nightly micro-bench; run explicitly with -- --ignored"]
fn csr_kernels_match_legacy_segment_ops() {
    // Deterministic pseudo-random rows from a splitmix-style generator, so
    // the comparison needs no RNG dependency and never flakes.
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
    };
    let (rows, d, groups) = (20_000usize, 32usize, 3_000usize);
    let src = Tensor::from_vec(&[rows, d], (0..rows * d).map(|_| next()).collect());

    // Ascending segment ids with uneven runs; odd ids stay empty so both
    // kernels exercise their empty-segment (zero-fill) rule.
    let num_segments = groups * 2;
    let seg: Vec<u32> = (0..rows).map(|i| (i * groups / rows) as u32 * 2).collect();
    let mut seg_off = vec![0u32; num_segments + 1];
    for &s in &seg {
        seg_off[s as usize + 1] += 1;
    }
    for i in 0..num_segments {
        seg_off[i + 1] += seg_off[i];
    }

    let reps = 9;
    let mut legacy = Tensor::default();
    let mut csr = Tensor::default();
    let mut argmax: Vec<i64> = Vec::new();

    let max_legacy_s =
        time_median(reps, || ops::segment_max(&src, &seg, num_segments, &mut legacy, &mut argmax));
    let max_csr_s = time_median(reps, || ops::segment_max_csr(&src, &seg_off, &mut csr));
    assert_tensor_bits_eq("segment_max", &legacy, &csr);
    eprintln!(
        "segment_max [{rows}x{d}] -> {num_segments}: legacy {:.3}ms, csr {:.3}ms ({:.2}x)",
        max_legacy_s * 1e3,
        max_csr_s * 1e3,
        max_legacy_s / max_csr_s.max(1e-12)
    );

    let sum_legacy_s =
        time_median(reps, || ops::segment_sum(&src, &seg, num_segments, &mut legacy));
    let sum_csr_s = time_median(reps, || ops::segment_sum_csr(&src, &seg_off, &mut csr));
    assert_tensor_bits_eq("segment_sum", &legacy, &csr);
    eprintln!(
        "segment_sum [{rows}x{d}] -> {num_segments}: legacy {:.3}ms, csr {:.3}ms ({:.2}x)",
        sum_legacy_s * 1e3,
        sum_csr_s * 1e3,
        sum_legacy_s / sum_csr_s.max(1e-12)
    );

    // Strided gather touching the whole matrix out of order.
    let idx: Vec<u32> = (0..rows).map(|i| ((i * 7919) % rows) as u32).collect();
    let gather_legacy_s = time_median(reps, || ops::gather_rows(&src, &idx, &mut legacy));
    let gather_flat_s = time_median(reps, || ops::gather_rows_flat(&src, &idx, &mut csr));
    assert_tensor_bits_eq("gather_rows", &legacy, &csr);
    eprintln!(
        "gather_rows [{rows}x{d}]: legacy {:.3}ms, flat {:.3}ms ({:.2}x)",
        gather_legacy_s * 1e3,
        gather_flat_s * 1e3,
        gather_legacy_s / gather_flat_s.max(1e-12)
    );
}
