//! Model persistence and reuse across the facade.

use restructure_timing::flow::{Dataset, FlowConfig};
use restructure_timing::prelude::*;

#[test]
fn trained_model_roundtrips_through_bytes() {
    let cfg = FlowConfig { scale: Scale::Tiny, ..FlowConfig::default() };
    let ds = Dataset::generate_subset(&cfg, 1, 1);
    let lib = &ds.library;
    let mc = ModelConfig::tiny();
    let train: Vec<PreparedDesign> =
        ds.train_designs().iter().map(|d| d.prepared(lib, &mc)).collect();
    let mut model = TimingModel::new(mc.clone());
    model.train(&train, &TrainConfig { epochs: 5, ..TrainConfig::default() });

    let test_prep = ds.test_designs()[0].prepared(lib, &mc);
    let expect = model.predict(&test_prep);

    let blob = model.save_weights();
    let mut restored = TimingModel::new(mc);
    restored.load_weights(&blob).expect("same architecture");
    let restored_pred = restored.predict(&test_prep);
    let bits = |v: &[f32]| v.iter().map(|p| p.to_bits()).collect::<Vec<u32>>();
    assert_eq!(bits(&restored_pred), bits(&expect), "reload must preserve predictions exactly");
    // The round-trip holds on both execution backends: the tape-backed
    // reference path must agree with the tape-free predictions to the bit.
    assert_eq!(
        bits(&restored.predict_taped(&test_prep)),
        bits(&expect),
        "taped reference diverged from tape-free predict after reload"
    );
}

#[test]
fn variants_predict_differently() {
    let cfg = FlowConfig { scale: Scale::Tiny, ..FlowConfig::default() };
    let ds = Dataset::generate_subset(&cfg, 1, 0);
    let lib = &ds.library;
    let d = ds.train_designs()[0];

    let mut preds = Vec::new();
    for variant in [ModelVariant::Full, ModelVariant::GnnOnly, ModelVariant::CnnOnly] {
        let mc = ModelConfig::tiny().with_variant(variant);
        let prep = d.prepared(lib, &mc);
        let model = TimingModel::new(mc);
        preds.push(model.predict(&prep));
    }
    assert_ne!(preds[0], preds[1]);
    assert_ne!(preds[0], preds[2]);
    assert_ne!(preds[1], preds[2]);
}
