//! Thread-count determinism of dataset generation.
//!
//! `Dataset::generate*` fans designs out across the thread pool, but every
//! design seeds its own RNG from `config.seed ^ params.seed` and shares no
//! mutable state, so the dataset must be identical whether it was built on
//! one thread or many.

use rtt_circgen::Scale;
use rtt_flow::{Dataset, DesignData, FlowConfig};
use rtt_nn::parallel;

/// Everything about a design that generation determines (wall-clock
/// timings excluded), with floats captured bit-exactly.
fn fingerprint(d: &DesignData) -> (String, u32, u32, u32, Vec<u32>, usize, usize) {
    (
        d.name.clone(),
        d.clock_period_ps.to_bits(),
        d.signoff.wns.to_bits(),
        d.no_opt.wns.to_bits(),
        d.endpoint_targets().iter().map(|t| t.to_bits()).collect(),
        d.diff.replaced_net_edges,
        d.diff.replaced_cell_edges,
    )
}

#[test]
fn parallel_dataset_build_matches_serial() {
    let cfg = FlowConfig { scale: Scale::Tiny, ..FlowConfig::default() };

    parallel::set_num_threads(1);
    let serial = Dataset::generate_subset(&cfg, 2, 1);
    parallel::set_num_threads(4);
    let par = Dataset::generate_subset(&cfg, 2, 1);
    parallel::set_num_threads(1);

    assert_eq!(serial.designs.len(), par.designs.len());
    for (a, b) in serial.designs.iter().zip(&par.designs) {
        assert_eq!(fingerprint(a), fingerprint(b), "{} diverged across thread counts", a.name);
    }
}
