//! `rtt-serve`: a fault-tolerant HTTP/1.1 prediction daemon over the
//! tape-free inference path.
//!
//! The library path ([`rtt_core::TimingModel::predict_batch`] on a
//! recycled [`rtt_nn::InferCtx`] arena) answers ~100k endpoints/sec on
//! one core; this crate puts a process boundary around it without giving
//! up that arithmetic or its bit-identity contract. Everything is built
//! on `std::net` — no async runtime, no HTTP dependency — in the same
//! spirit as `crates/lint`'s hand-rolled lexer:
//!
//! * [`http`] — an incremental, byte-budgeted HTTP/1.1 request parser
//!   and response encoder. Arbitrary bytes never panic (fuzzed).
//! * [`queue`] — a bounded `Mutex`+`Condvar` request queue. When it is
//!   full the acceptor answers `503` + `Retry-After` inline; memory use
//!   is bounded no matter how fast clients arrive.
//! * [`reload`] — model hot-swap behind an `Arc` generation pointer. A
//!   corrupt or mismatched reload keeps the old model serving and
//!   surfaces the typed error on `/stats`.
//! * [`fault`] — deterministic, seeded fault injection (short reads and
//!   writes, disconnects, stalls, corrupt reloads, queue-full bursts),
//!   env-gated via `RTT_FAULTS` exactly like `RTT_SANITIZE`.
//! * [`stats`] / [`server`] — request counters, bounded latency rings,
//!   and the daemon itself: a fixed worker pool, one recycled `InferCtx`
//!   per worker, per-request deadlines, graceful drain on shutdown.
//!
//! The chaos suite (`tests/chaos.rs`) drives every fault mode at once
//! and asserts the daemon never panics, never wedges, answers every
//! surviving connection with a well-formed response, and — before,
//! during, and after the storm — returns predictions bit-identical to
//! the library path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod http;
pub mod queue;
pub mod reload;
pub mod server;
pub mod stats;

pub use fault::{FaultMode, FaultPlan, FaultSpec};
pub use http::{parse_request, HttpError, Limits, ParseStatus, Request, Response};
pub use queue::Queue;
pub use reload::{ModelSwap, ReloadError};
pub use server::{ServeConfig, Server, ShutdownReport};
pub use stats::{Stats, StatsSnapshot};

/// The crate's single clock read. Deadlines and latency measurements are
/// observability/robustness plumbing, not model arithmetic: nothing
/// numeric depends on them, so the determinism contract (same inputs →
/// bit-identical predictions) is preserved.
pub(crate) fn now() -> std::time::Instant {
    // rtt-lint: allow(D002, reason = "serving deadlines and latency metrics need a real clock; predictions never depend on it")
    std::time::Instant::now()
}
