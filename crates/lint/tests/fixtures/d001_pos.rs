// D001 positive: hash-order iteration in a determinism-critical crate.
use std::collections::{HashMap, HashSet};

pub fn sum_values(scores: &HashMap<u32, f32>) -> f32 {
    let mut total = 0.0;
    for (_, v) in scores.iter() {
        total += v;
    }
    total
}

pub fn visit_all(seen: HashSet<u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for id in seen {
        out.push(id);
    }
    out
}

pub fn drain_cache() {
    let mut cache: HashMap<String, f32> = HashMap::new();
    cache.insert("a".to_owned(), 1.0);
    for (_k, _v) in cache.drain() {}
    let _ = cache.keys().count();
}

pub fn untyped_let() -> usize {
    let mut index = HashMap::new();
    index.insert(1u32, 2u32);
    index.values().count()
}
