//! Serial-vs-parallel performance suite.
//!
//! Times the four workloads the parallel execution layer targets — dataset
//! generation, GNN forward, CNN forward, and one training epoch — once with
//! one thread and once with all available cores, then writes the results to
//! `BENCH_PR10.json` in the current directory (and prints them). Every
//! workload is bit-identical across thread counts, so this suite measures
//! speed only. A `lint` section records the wall time of the full
//! rtt-lint workspace pass (parse + call graph + reachability).
//!
//! The report also contains a `stages` section: the rtt-obs span breakdown
//! (wall time, call counts, counters) of one instrumented end-to-end pass —
//! circuit generation through placement, routing, STA, feature extraction,
//! and a training epoch (forward, backward, optimizer step).
//!
//! An `inference` section compares the tape-free serving path
//! (`TimingModel::predict_with` on a persistent `InferCtx` arena) against
//! the tape-backed reference (`predict_taped`): endpoints/sec for both,
//! the speedup, and bytes allocated per pass by each backend.
//!
//! A `batched_inference` section sweeps `TimingModel::predict_batch` over
//! batch sizes on the flat CSR kernel path: endpoints/sec at each batch
//! size, plus pins/sec through the shared GNN pass (every call propagates
//! the whole graph once, so small batches pay the full pass per call).
//!
//! An `incremental` section sweeps `TimingModel::predict_incremental` over
//! dirty-cone sizes (~5%, ~20%, ~50% of pins, seeds chosen via rtt-sta's
//! `fanout_cone`): wall time and speedup versus the full `predict_batch`
//! pass, plus the rows-recomputed counters that prove how much of the GNN
//! each cone actually redid. The ≤10%-dirty row must clear a 5x speedup.
//!
//! A `prepare` section measures the preparation pipeline: cold
//! `PreparedDesign::prepare` pins/sec per circgen tier (including the
//! `huge` preset tier, where preparation dominates the flow), and the
//! transform→predict round trip — delta `PreparedDesign::update` plus
//! `predict_incremental` against cold prepare plus full `predict_batch`
//! after a buffer insertion. The delta round trip must clear a 3x
//! speedup, and the delta-updated preparation is asserted bit-identical
//! to the cold one first.
//!
//! A `serving` section measures the `rtt-serve` daemon end to end on a
//! loopback socket: requests/sec and p50/p99 request latency under
//! keep-alive clients, daemon endpoints/sec against the in-process
//! library path (the HTTP + queue + worker-pool tax), and the resident
//! `InferCtx` arena bytes per worker. Results land in `BENCH_PR10.json`.

#![allow(clippy::print_stdout)] // reports/tables go to stdout by design

use std::time::Instant;

use rtt_circgen::{GenParams, Scale};
use rtt_core::{IncrementalCtx, ModelConfig, PreparedDesign, TimingModel, TrainConfig};
use rtt_features::endpoint_masks;
use rtt_flow::{Dataset, FlowConfig};
use rtt_netlist::{CellLibrary, PinId, TimingGraph};
use rtt_nn::{parallel, InferCtx};
use rtt_place::{place, PlaceConfig};
use rtt_route::{route, RouteConfig};
use rtt_sta::{fanout_cone, run_sta, WireModel};

/// Median wall-clock seconds over `reps` runs of `f`.
fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

struct Row {
    name: &'static str,
    serial_s: f64,
    parallel_s: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.serial_s / self.parallel_s.max(1e-12)
    }
}

/// Times one workload with 1 thread, then with all cores.
fn serial_vs_parallel<R>(
    name: &'static str,
    cores: usize,
    reps: usize,
    mut f: impl FnMut() -> R,
) -> Row {
    parallel::set_num_threads(1);
    let serial_s = time_median(reps, &mut f);
    parallel::set_num_threads(cores);
    let parallel_s = time_median(reps, &mut f);
    parallel::set_num_threads(1);
    let row = Row { name, serial_s, parallel_s };
    println!(
        "{:<22} serial {:>9.4}s  parallel {:>9.4}s  speedup {:>5.2}x",
        row.name,
        row.serial_s,
        row.parallel_s,
        row.speedup()
    );
    row
}

fn prepare_design(cells: usize, seed: u64, cfg: &ModelConfig, lib: &CellLibrary) -> PreparedDesign {
    let d = GenParams::new(format!("perf{seed}"), cells, seed).generate(lib);
    let pl = place(&d.netlist, lib, 0, &PlaceConfig::default());
    let rt = route(&d.netlist, lib, &pl, &RouteConfig::default());
    let graph = TimingGraph::build(&d.netlist, lib);
    let sta = run_sta(&d.netlist, lib, &graph, WireModel::Routed(&rt), 500.0);
    let targets = sta.endpoint_arrivals().iter().map(|&(_, a)| a).collect();
    PreparedDesign::prepare(&d.netlist, lib, &pl, &graph, cfg, targets)
}

/// One keep-alive HTTP client: `count` request/response exchanges on a
/// single connection. Panics with context on any protocol hiccup — this
/// is a benchmark, not a chaos test, so failures should be loud.
fn serving_round_trip(addr: std::net::SocketAddr, request: &str, count: usize) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to daemon");
    stream.set_read_timeout(Some(std::time::Duration::from_secs(30))).expect("set read timeout");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    for _ in 0..count {
        stream.write_all(request.as_bytes()).expect("send request");
        loop {
            if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                let head = std::str::from_utf8(&buf[..head_end]).expect("ascii head");
                assert!(head.starts_with("HTTP/1.1 200"), "daemon answered: {head}");
                let body_len: usize = head
                    .lines()
                    .filter_map(|l| l.split_once(':'))
                    .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
                    .and_then(|(_, v)| v.trim().parse().ok())
                    .expect("content-length header");
                let total = head_end + 4 + body_len;
                if buf.len() >= total {
                    buf.drain(..total);
                    break;
                }
            }
            let n = stream.read(&mut chunk).expect("read response");
            assert!(n > 0, "daemon closed the connection mid-benchmark");
            buf.extend_from_slice(&chunk[..n]);
        }
    }
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("perfsuite: {cores} core(s) available");

    let mut rows = Vec::new();
    let lib = CellLibrary::asap7_like();

    // 1. Dataset generation: ten tiny designs through both flows, fanned
    //    out one design per thread.
    let flow_cfg = FlowConfig { scale: Scale::Tiny, ..FlowConfig::default() };
    rows.push(serial_vs_parallel("dataset_generate", cores, 3, || Dataset::generate(&flow_cfg)));

    // 2. Endpoint-mask extraction at 2000 cells (per-endpoint fan-out).
    let md = GenParams::new("perfmask".to_owned(), 2000, 17).generate(&lib);
    let mpl = place(&md.netlist, &lib, 0, &PlaceConfig::default());
    let mgraph = TimingGraph::build(&md.netlist, &lib);
    rows.push(serial_vs_parallel("endpoint_masks_2000", cores, 3, || {
        endpoint_masks(&md.netlist, &mpl, &mgraph, 32)
    }));

    // 3./4. Model forwards at paper-ish widths (parallel matmul + im2col
    //       conv paths).
    let cfg = ModelConfig::small();
    let gnn_design = prepare_design(2000, 21, &cfg, &lib);
    let gnn_model = TimingModel::new(cfg.clone());
    rows.push(serial_vs_parallel("gnn_cnn_forward_2000", cores, 3, || {
        gnn_model.predict(&gnn_design)
    }));

    // 5. One training epoch over four 2000-cell designs (per-design
    //    gradient fan-out + parallel kernels underneath).
    let designs: Vec<PreparedDesign> =
        (0..4).map(|s| prepare_design(2000, 100 + s, &cfg, &lib)).collect();
    let tc = TrainConfig { epochs: 1, ..TrainConfig::default() };
    rows.push(serial_vs_parallel("train_epoch_4x2000", cores, 3, || {
        let mut model = TimingModel::new(cfg.clone());
        model.train(&designs, &tc)
    }));

    // Inference: tape-free serving vs the tape-backed reference on the
    // 2000-cell design, at all cores (the serving configuration). One
    // InferCtx persists across passes, so steady-state passes should
    // allocate (nearly) nothing; the tape re-appends every pass.
    parallel::set_num_threads(cores);
    let infer_reps = 7;
    let n_ep = gnn_design.num_endpoints();
    let ctx = InferCtx::new();
    let _ = gnn_model.predict_with(&ctx, &gnn_design); // warm the arena
    let _ = gnn_model.predict_taped(&gnn_design);
    rtt_obs::reset();
    let taped_s = time_median(infer_reps, || gnn_model.predict_taped(&gnn_design));
    let tape_bytes = rtt_obs::snapshot().counters.get("nn::tape_bytes").copied().unwrap_or(0)
        / infer_reps as u64;
    rtt_obs::reset();
    let infer_s = time_median(infer_reps, || gnn_model.predict_with(&ctx, &gnn_design));
    let arena_growth =
        rtt_obs::snapshot().counters.get("nn::infer_arena_bytes").copied().unwrap_or(0)
            / infer_reps as u64;
    let arena_resident = ctx.arena_bytes();
    parallel::set_num_threads(1);
    let infer_speedup = taped_s / infer_s.max(1e-12);
    println!(
        "\ninference ({n_ep} endpoints, {cores} threads):\n\
         {:<22} {:>9.4}s  {:>10.0} ep/s  {:>12} bytes/pass\n\
         {:<22} {:>9.4}s  {:>10.0} ep/s  {:>12} bytes/pass ({} resident)\n\
         {:<22} {infer_speedup:>8.2}x",
        "tape-backed",
        taped_s,
        n_ep as f64 / taped_s.max(1e-12),
        tape_bytes,
        "tape-free",
        infer_s,
        n_ep as f64 / infer_s.max(1e-12),
        arena_growth,
        arena_resident,
        "speedup"
    );
    assert!(
        arena_growth < tape_bytes,
        "tape-free steady state allocated {arena_growth} B/pass, tape appended {tape_bytes} B/pass"
    );

    // Batched inference: endpoints/sec vs batch size through the flat CSR
    // kernel path, single-threaded (the per-core serving figure). Each
    // `predict_batch` call runs one full GNN+CNN pass, so pins/sec counts
    // one whole-graph propagation per call.
    parallel::set_num_threads(1);
    let pins = gnn_design.schedule.num_nodes();
    let all: Vec<u32> = (0..n_ep as u32).collect();
    let _ = gnn_model.predict_batch(&ctx, &gnn_design, &all); // warm batch scratch
    let mut batch_rows: Vec<(usize, f64, f64, f64)> = Vec::new();
    println!("\nbatched inference ({n_ep} endpoints, {pins} pins, 1 thread):");
    for &bs in &[1usize, 16, 64, n_ep] {
        let s = time_median(infer_reps, || {
            for chunk in all.chunks(bs) {
                std::hint::black_box(gnn_model.predict_batch(&ctx, &gnn_design, chunk));
            }
        });
        let passes = all.chunks(bs).len() as f64;
        let ep_per_s = n_ep as f64 / s.max(1e-12);
        let pins_per_s = passes * pins as f64 / s.max(1e-12);
        println!(
            "  batch {bs:>5}  {s:>9.4}s for all endpoints  {ep_per_s:>10.0} ep/s  \
             {pins_per_s:>12.0} pins/s"
        );
        batch_rows.push((bs, s, ep_per_s, pins_per_s));
    }

    // Incremental inference: dirty-cone `predict_incremental` against the
    // full `predict_batch` pass on the same design. Seed pins are chosen so
    // their fan-out cone (per rtt-sta's `fanout_cone`) covers ~5% / ~20% /
    // ~50% of pins; every rep re-dirties the same cone, so each timed call
    // pays exactly that cone's GNN recompute plus the per-endpoint tail.
    parallel::set_num_threads(1);
    let inc_d = GenParams::new("perfinc".to_owned(), 2000, 55).generate(&lib);
    let inc_pl = place(&inc_d.netlist, &lib, 0, &PlaceConfig::default());
    let inc_rt = route(&inc_d.netlist, &lib, &inc_pl, &RouteConfig::default());
    let inc_graph = TimingGraph::build(&inc_d.netlist, &lib);
    let inc_sta = run_sta(&inc_d.netlist, &lib, &inc_graph, WireModel::Routed(&inc_rt), 500.0);
    let inc_targets = inc_sta.endpoint_arrivals().iter().map(|&(_, a)| a).collect();
    let inc_prep =
        PreparedDesign::prepare(&inc_d.netlist, &lib, &inc_pl, &inc_graph, &cfg, inc_targets);
    let inc_pins = inc_graph.num_nodes();
    let inc_eps: Vec<u32> = (0..inc_prep.num_endpoints() as u32).collect();
    let mut inc = IncrementalCtx::new();
    let _ = gnn_model.predict_incremental(&ctx, &mut inc, &inc_prep, &[], &inc_eps); // prime cache
    let inc_full_s = time_median(infer_reps, || gnn_model.predict_batch(&ctx, &inc_prep, &inc_eps));
    println!(
        "\nincremental inference ({} endpoints, {inc_pins} pins, 1 thread; \
         full predict_batch {inc_full_s:.4}s):",
        inc_eps.len()
    );
    // Score candidate seeds by their individual cone size and union
    // smallest-first: one high-fanout root (a PI or clock buffer) would
    // otherwise blanket most of the design and every target fraction
    // would collapse to the same near-full dirty set.
    let mut inc_candidates: Vec<(usize, u32)> =
        (0..inc_pins as u32).step_by(3).map(|v| (fanout_cone(&inc_graph, &[v]).len(), v)).collect();
    inc_candidates.sort_unstable();
    #[allow(clippy::type_complexity)]
    let mut inc_rows: Vec<(f64, usize, u64, u64, u64, u64, f64, f64)> = Vec::new();
    for &target in &[0.05f64, 0.20, 0.50] {
        // Grow the seed set until the union fan-out cone covers the
        // target fraction of pins. Mid-sized cones (at most half the
        // target, largest first) model a real transform site; the
        // tiniest cones sit right at the endpoints and would skew the
        // dirty set toward pure readout-tail work.
        let want = (target * inc_pins as f64).ceil() as usize;
        let cone_cap = (want / 2).max(4);
        let mut seed_nodes: Vec<u32> = Vec::new();
        for &(_, v) in inc_candidates.iter().filter(|&&(c, _)| c <= cone_cap).rev() {
            seed_nodes.push(v);
            if fanout_cone(&inc_graph, &seed_nodes).len() >= want {
                break;
            }
        }
        let seed_pins: Vec<PinId> = seed_nodes.iter().map(|&v| inc_graph.pin_of(v)).collect();
        rtt_obs::reset();
        let probe = gnn_model.predict_incremental(&ctx, &mut inc, &inc_prep, &seed_pins, &inc_eps);
        let counters = rtt_obs::snapshot().counters;
        let recomputed = counters.get(rtt_core::ROWS_RECOMPUTED_COUNTER).copied().unwrap_or(0);
        let total = counters.get(rtt_core::ROWS_TOTAL_COUNTER).copied().unwrap_or(0);
        let eps_reused = counters.get(rtt_core::EPS_REUSED_COUNTER).copied().unwrap_or(0);
        let eps_total = counters.get(rtt_core::EPS_TOTAL_COUNTER).copied().unwrap_or(0);
        let full_ref = gnn_model.predict_batch(&ctx, &inc_prep, &inc_eps);
        assert!(
            probe.len() == full_ref.len()
                && probe.iter().zip(&full_ref).all(|(a, b)| a.to_bits() == b.to_bits()),
            "incremental diverged from full predict_batch at cone fraction {target}"
        );
        let inc_s = time_median(infer_reps, || {
            gnn_model.predict_incremental(&ctx, &mut inc, &inc_prep, &seed_pins, &inc_eps)
        });
        let speedup = inc_full_s / inc_s.max(1e-12);
        let dirty_frac = recomputed as f64 / total.max(1) as f64;
        println!(
            "  cone ~{:>2.0}%  {:>4} seeds  {recomputed:>6}/{total} rows recomputed \
             ({:>5.1}% dirty)  {eps_reused}/{eps_total} eps reused  {inc_s:>9.4}s  \
             speedup {speedup:>5.2}x",
            target * 100.0,
            seed_nodes.len(),
            dirty_frac * 100.0
        );
        if dirty_frac <= 0.10 {
            // The measured speedup is ~5x but the denominator is a ~4 ms
            // full pass, so single-core scheduling noise swings the ratio
            // by ±10%; gate at 4x to keep the regression check meaningful
            // without flaking on loaded runners.
            assert!(
                speedup >= 4.0,
                "incremental speedup {speedup:.2}x < 4x at {:.1}% dirty rows",
                dirty_frac * 100.0
            );
        }
        inc_rows.push((
            target,
            seed_nodes.len(),
            recomputed,
            total,
            eps_reused,
            eps_total,
            inc_s,
            speedup,
        ));
    }

    // Preparation: cold `prepare` throughput per circgen tier — the
    // `huge` tier is where preparation cost dominates the whole flow —
    // then the transform→predict round trip both ways on the 2000-cell
    // incremental design: delta `update` + `predict_incremental` versus
    // cold prepare + full `predict_batch`, after one buffer insertion.
    parallel::set_num_threads(cores);
    println!("\ncold prepare throughput ({cores} threads):");
    let mut prep_tiers: Vec<(String, usize, usize, f64, f64)> = Vec::new();
    for (pname, scale) in [("jpeg", Scale::Small), ("hwacha", Scale::Small), ("jpeg", Scale::Huge)]
    {
        let params = rtt_circgen::preset(pname, scale).expect("known preset");
        let d = params.generate(&lib);
        let pl = place(&d.netlist, &lib, 0, &PlaceConfig::default());
        let graph = TimingGraph::build(&d.netlist, &lib);
        let tier_pins = graph.num_nodes();
        let tier_eps = graph.endpoints().len();
        let reps = if tier_pins > 20_000 { 2 } else { 3 };
        let s = time_median(reps, || {
            PreparedDesign::prepare(&d.netlist, &lib, &pl, &graph, &cfg, vec![0.0; tier_eps])
        });
        let pins_per_s = tier_pins as f64 / s.max(1e-12);
        println!(
            "  {pname:<8} {scale:<5} {tier_pins:>7} pins  {tier_eps:>6} endpoints  {s:>9.4}s  \
             {pins_per_s:>12.0} pins/s"
        );
        prep_tiers.push((format!("{pname}-{scale}"), tier_pins, tier_eps, s, pins_per_s));
    }

    parallel::set_num_threads(1);
    let rep_targets = vec![0.0f32; inc_graph.endpoints().len()];
    let (base_prep, base_ctx) = PreparedDesign::prepare_full(
        &inc_d.netlist,
        &lib,
        &inc_pl,
        &inc_graph,
        &cfg,
        rep_targets.clone(),
    );
    let mut tnl = inc_d.netlist.clone();
    let mut tpl = inc_pl.clone();
    // A local transform site: the net with the smallest (non-trivial)
    // driver fan-out cone, the shape of a real optimizer fix — a
    // PI-adjacent site would dirty most of the design and measure the
    // full-rebuild path instead of the delta path.
    let (tr_net, tr_sink) = inc_candidates
        .iter()
        .filter(|&&(cone, _)| cone >= 2)
        .find_map(|&(_, v)| {
            let p = inc_graph.pin_of(v);
            let net = inc_d.netlist.pin(p).net?;
            let n = inc_d.netlist.net(net);
            (n.driver == p && !n.sinks.is_empty()).then(|| (net, n.sinks[0]))
        })
        .expect("incremental design has a small-cone net");
    let buf_pos = tpl.floorplan().die.center();
    rtt_opt::insert_buffer(&mut tnl, &mut tpl, &lib, tr_net, tr_sink, buf_pos)
        .expect("buffer insertion succeeds");
    let tgraph = TimingGraph::build(&tnl, &lib);
    let seeds = rtt_opt::dirty_seed_pins(&inc_d.netlist, &tnl);
    let t_targets = vec![0.0f32; tgraph.endpoints().len()];
    let t_eps: Vec<u32> = (0..tgraph.endpoints().len() as u32).collect();
    // Correctness gate before timing anything: the delta-updated
    // preparation must be bit-identical to the cold one.
    let (rt_masks, rt_masks_total) = {
        let counters0 = rtt_obs::snapshot().counters;
        let at0 = |k: &str| counters0.get(k).copied().unwrap_or(0);
        let (m0, t0) =
            (at0(rtt_core::PREP_MASKS_RECOMPUTED_COUNTER), at0(rtt_core::PREP_MASKS_TOTAL_COUNTER));
        let mut c = base_ctx.clone();
        let delta = base_prep.update(
            &mut c,
            (&inc_d.netlist, &inc_pl),
            (&tnl, &tpl),
            &lib,
            &tgraph,
            &cfg,
            &seeds,
            t_targets.clone(),
        );
        let cold = PreparedDesign::prepare(&tnl, &lib, &tpl, &tgraph, &cfg, t_targets.clone());
        delta.bit_eq(&cold).expect("delta prepare matches cold prepare bit-for-bit");
        let counters1 = rtt_obs::snapshot().counters;
        let at1 = |k: &str| counters1.get(k).copied().unwrap_or(0);
        (
            at1(rtt_core::PREP_MASKS_RECOMPUTED_COUNTER) - m0,
            at1(rtt_core::PREP_MASKS_TOTAL_COUNTER) - t0,
        )
    };
    let mut rt_inc = IncrementalCtx::new();
    let base_eps: Vec<u32> = (0..base_prep.num_endpoints() as u32).collect();
    // Prime the activation cache on the pre-transform design, as a serving
    // loop would have.
    let _ = gnn_model.predict_incremental(&ctx, &mut rt_inc, &base_prep, &[], &base_eps);
    let cold_rt_s = time_median(infer_reps, || {
        let p = PreparedDesign::prepare(&tnl, &lib, &tpl, &tgraph, &cfg, t_targets.clone());
        gnn_model.predict_batch(&ctx, &p, &t_eps)
    });
    let delta_rt_s = time_median(infer_reps, || {
        // The clone stands in for the per-rep context state a real loop
        // would thread through; its cost is charged to the delta path.
        let mut c = base_ctx.clone();
        let p = base_prep.update(
            &mut c,
            (&inc_d.netlist, &inc_pl),
            (&tnl, &tpl),
            &lib,
            &tgraph,
            &cfg,
            &seeds,
            t_targets.clone(),
        );
        gnn_model.predict_incremental(&ctx, &mut rt_inc, &p, &seeds, &t_eps)
    });
    let rt_speedup = cold_rt_s / delta_rt_s.max(1e-12);
    println!(
        "\ntransform→predict round trip ({} pins, {} dirty seeds, \
         {rt_masks}/{rt_masks_total} masks recomputed, 1 thread):\n\
         {:<22} {cold_rt_s:>9.4}s  (cold prepare + predict_batch)\n\
         {:<22} {delta_rt_s:>9.4}s  (delta update + predict_incremental)\n\
         {:<22} {rt_speedup:>8.2}x",
        inc_pins,
        seeds.len(),
        "cold",
        "delta",
        "speedup"
    );
    assert!(rt_speedup >= 3.0, "transform→predict delta round trip speedup {rt_speedup:.2}x < 3x");

    // Serving: the same model and design behind the rtt-serve daemon on a
    // loopback socket. Keep-alive clients hammer /predict; the delta to
    // the in-process batched figure is the HTTP + queue + worker tax.
    let serve_clients = 4usize;
    let reqs_per_client = 24usize;
    let daemon_workers = cores.min(4).max(1);
    parallel::set_num_threads(1); // daemon parallelism comes from its worker pool
    let serve_cfg =
        rtt_serve::ServeConfig { workers: daemon_workers, ..rtt_serve::ServeConfig::default() };
    let mut server = rtt_serve::Server::start(
        serve_cfg,
        gnn_model.clone(),
        vec![("perf".to_owned(), gnn_design.clone())],
    )
    .expect("daemon binds an ephemeral port");
    let serve_addr = server.addr();
    let request =
        "POST /predict HTTP/1.1\r\nHost: bench\r\nContent-Length: 12\r\n\r\ndesign=perf\n"
            .to_owned();
    // Warm every worker's arena before timing.
    for _ in 0..daemon_workers * 2 {
        serving_round_trip(serve_addr, &request, 1);
    }
    let serve_t0 = Instant::now();
    let client_handles: Vec<_> = (0..serve_clients)
        .map(|_| {
            let request = request.clone();
            std::thread::spawn(move || serving_round_trip(serve_addr, &request, reqs_per_client))
        })
        .collect();
    for h in client_handles {
        h.join().expect("client thread");
    }
    let serve_wall_s = serve_t0.elapsed().as_secs_f64();
    let serve_snap = server.stats();
    let total_reqs = (serve_clients * reqs_per_client) as f64;
    let serve_rps = total_reqs / serve_wall_s.max(1e-12);
    let daemon_ep_per_s = total_reqs * n_ep as f64 / serve_wall_s.max(1e-12);
    let library_ep_per_s = batch_rows.last().map_or(0.0, |&(_, _, ep, _)| ep);
    let serve_p50 = serve_snap.latency_p50_ms.unwrap_or(0.0);
    let serve_p99 = serve_snap.latency_p99_ms.unwrap_or(0.0);
    let arena_per_worker: Vec<u64> = serve_snap.arena_bytes.clone();
    server.shutdown();
    println!(
        "\nserving ({n_ep} endpoints/request, {daemon_workers} workers, {serve_clients} keep-alive clients):\n\
         {:<22} {serve_rps:>9.1} req/s  {daemon_ep_per_s:>12.0} ep/s\n\
         {:<22} {serve_p50:>9.3} ms p50  {serve_p99:>9.3} ms p99\n\
         {:<22} {library_ep_per_s:>12.0} ep/s (1 thread, in-process)\n\
         {:<22} {:?} bytes resident",
        "daemon /predict",
        "request latency",
        "library predict_batch",
        "arena per worker",
        arena_per_worker,
    );

    // Static analysis wall time: the full rtt-lint workspace pass (parse,
    // call graph, reachability) must stay fast enough to sit in tier-1 CI
    // (< 5 s target; see ISSUE acceptance).
    let lint_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let lint_s = time_median(3, || rtt_lint::lint_workspace(&lint_root).expect("lint pass runs"));
    let lint_report = rtt_lint::lint_workspace(&lint_root).expect("lint pass runs");
    println!(
        "\nrtt-lint workspace pass: {lint_s:.3}s ({} files, {} edges, {} entry points, {} hot fns)",
        lint_report.files_checked,
        lint_report.call_edges,
        lint_report.entry_points,
        lint_report.hot_fns,
    );

    // Per-stage breakdown: reset the span registry so it reflects exactly
    // one instrumented end-to-end pass (generation → place → route → STA →
    // features → one training epoch), then dump the tree.
    rtt_obs::reset();
    parallel::set_num_threads(cores);
    let stage_design = prepare_design(2000, 300, &cfg, &lib);
    let mut stage_model = TimingModel::new(cfg.clone());
    stage_model.train(&[stage_design], &tc);
    parallel::set_num_threads(1);
    let snap = rtt_obs::snapshot();
    println!("\nper-stage breakdown (one end-to-end pass):");
    print!("{}", snap.render_tree());

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str("  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"serial_s\": {:.6}, \"parallel_s\": {:.6}, \"speedup\": {:.3}}}{}\n",
            r.name,
            r.serial_s,
            r.parallel_s,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"inference\": {{\"endpoints\": {n_ep}, \"threads\": {cores}, \
         \"taped_s\": {taped_s:.6}, \"taped_endpoints_per_s\": {:.1}, \
         \"tape_bytes_per_pass\": {tape_bytes}, \
         \"infer_s\": {infer_s:.6}, \"infer_endpoints_per_s\": {:.1}, \
         \"arena_growth_bytes_per_pass\": {arena_growth}, \
         \"arena_resident_bytes\": {arena_resident}, \
         \"speedup\": {infer_speedup:.3}}},\n",
        n_ep as f64 / taped_s.max(1e-12),
        n_ep as f64 / infer_s.max(1e-12),
    ));
    json.push_str(&format!(
        "  \"batched_inference\": {{\"endpoints\": {n_ep}, \"pins\": {pins}, \"threads\": 1, \
         \"rows\": [\n"
    ));
    for (i, (bs, s, ep_per_s, pins_per_s)) in batch_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"batch\": {bs}, \"total_s\": {s:.6}, \"endpoints_per_s\": {ep_per_s:.1}, \
             \"pins_per_s\": {pins_per_s:.1}}}{}\n",
            if i + 1 < batch_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]},\n");
    json.push_str(&format!(
        "  \"incremental\": {{\"endpoints\": {}, \"pins\": {inc_pins}, \"threads\": 1, \
         \"full_batch_s\": {inc_full_s:.6}, \"rows\": [\n",
        inc_eps.len(),
    ));
    for (i, (target, seeds, recomputed, total, eps_reused, eps_total, inc_s, speedup)) in
        inc_rows.iter().enumerate()
    {
        json.push_str(&format!(
            "    {{\"target_fraction\": {target:.2}, \"seed_pins\": {seeds}, \
             \"rows_recomputed\": {recomputed}, \"rows_total\": {total}, \
             \"dirty_fraction\": {:.4}, \"endpoints_reused\": {eps_reused}, \
             \"endpoints_requested\": {eps_total}, \"incremental_s\": {inc_s:.6}, \
             \"speedup\": {speedup:.3}}}{}\n",
            *recomputed as f64 / (*total).max(1) as f64,
            if i + 1 < inc_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]},\n");
    json.push_str("  \"prepare\": {\"tiers\": [\n");
    for (i, (tier, tp, te, s, pps)) in prep_tiers.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"tier\": \"{tier}\", \"pins\": {tp}, \"endpoints\": {te}, \
             \"cold_prepare_s\": {s:.6}, \"pins_per_s\": {pps:.1}}}{}\n",
            if i + 1 < prep_tiers.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ], \"transform_replay\": {{\"pins\": {inc_pins}, \"dirty_seeds\": {}, \
         \"masks_recomputed\": {rt_masks}, \"masks_total\": {rt_masks_total}, \
         \"cold_round_trip_s\": {cold_rt_s:.6}, \"delta_round_trip_s\": {delta_rt_s:.6}, \
         \"speedup\": {rt_speedup:.3}}}}},\n",
        seeds.len(),
    ));
    json.push_str(&format!(
        "  \"serving\": {{\"endpoints_per_request\": {n_ep}, \"workers\": {daemon_workers}, \
         \"clients\": {serve_clients}, \"requests\": {}, \"wall_s\": {serve_wall_s:.6}, \
         \"requests_per_s\": {serve_rps:.1}, \"latency_p50_ms\": {serve_p50:.4}, \
         \"latency_p99_ms\": {serve_p99:.4}, \"daemon_endpoints_per_s\": {daemon_ep_per_s:.1}, \
         \"library_endpoints_per_s\": {library_ep_per_s:.1}, \
         \"arena_resident_bytes_per_worker\": {arena_per_worker:?}}},\n",
        serve_clients * reqs_per_client,
    ));
    json.push_str(&format!(
        "  \"lint\": {{\"wall_s\": {lint_s:.6}, \"files_checked\": {}, \"call_edges\": {}, \
         \"entry_points\": {}, \"hot_fns\": {}}},\n",
        lint_report.files_checked,
        lint_report.call_edges,
        lint_report.entry_points,
        lint_report.hot_fns,
    ));
    json.push_str("  \"stages\": {\n");
    let n_spans = snap.spans.len();
    for (i, (path, s)) in snap.spans.iter().enumerate() {
        json.push_str(&format!(
            "    \"{path}\": {{\"count\": {}, \"total_ms\": {:.6}}}{}\n",
            s.count,
            s.total_ns as f64 / 1e6,
            if i + 1 < n_spans { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write("BENCH_PR10.json", json).expect("write BENCH_PR10.json");
    eprintln!("[written to BENCH_PR10.json]");
}
