// R001 negative: fallible returns in lib code; unwrap confined to tests.
pub fn first_line(text: &str) -> Option<&str> {
    text.lines().next()
}

pub fn parse_port(s: &str) -> Result<u16, std::num::ParseIntError> {
    s.parse()
}

pub fn with_default(s: &str) -> u16 {
    s.parse().unwrap_or(8080)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(first_line("a\nb").unwrap(), "a");
        assert_eq!(parse_port("80").expect("parses"), 80);
    }
}
