//! Versioned, self-describing model files.
//!
//! [`TimingModel::save_weights`] produces a raw weight blob that only a
//! model built from the *same* [`ModelConfig`] can interpret. A serving
//! daemon cannot assume that: it hot-reloads whatever bytes are on disk,
//! including files written by an older build, truncated by a crashed
//! writer, or corrupted in transit. This module wraps the raw blob in a
//! container that makes every such failure a typed, recoverable error:
//!
//! ```text
//! magic     b"RTTM"                      (4 bytes)
//! version   u32 le                       (currently 1)
//! config    fixed-width ModelConfig      (see encode_config)
//! paylen    u64 le                       (raw weight-blob length)
//! payload   TimingModel::save_weights()  (paylen bytes)
//! checksum  u64 le                       (FNV-1a over everything above)
//! ```
//!
//! The embedded config makes the file self-describing — [`load_model`]
//! reconstructs the architecture without out-of-band scale flags — and
//! the trailing checksum catches corruption (including truncation) before
//! any of the payload is trusted. Decoding is total: arbitrary bytes map
//! to `Err`, never a panic, and config fields are sanity-capped before a
//! model is constructed so a corrupt width cannot trigger a huge
//! allocation.

use std::fmt;

use rtt_nn::WeightsError;

use crate::{Aggregation, ModelConfig, ModelVariant, TimingModel};

/// File magic: "RTTM" (restructure-timing timing model).
pub const MAGIC: [u8; 4] = *b"RTTM";

/// Current container version.
pub const VERSION: u32 = 1;

/// Sanity cap on config widths (embed/hidden/channel counts). Far above
/// any real configuration, far below anything that could allocate
/// gigabytes from a corrupt field.
const MAX_WIDTH: usize = 1 << 16;

/// Sanity cap on the layout-map grid edge.
const MAX_GRID: usize = 1 << 13;

/// Why a model file failed to load. Every variant leaves the caller's
/// state untouched; a serving daemon maps these onto "keep the old model".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelIoError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The container version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The file ended before its declared contents.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes left in the file.
        available: usize,
    },
    /// The trailing checksum does not match the contents.
    Checksum {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed from the contents.
        computed: u64,
    },
    /// A config field decoded to a nonsensical value.
    BadConfig(&'static str),
    /// The weight payload failed to deserialize.
    Weights(WeightsError),
}

impl fmt::Display for ModelIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a model file (bad magic)"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported model file version {v}"),
            Self::Truncated { needed, available } => {
                write!(f, "truncated model file: needed {needed} more bytes, {available} left")
            }
            Self::Checksum { stored, computed } => {
                write!(
                    f,
                    "model file checksum mismatch: stored {stored:#x}, computed {computed:#x}"
                )
            }
            Self::BadConfig(what) => write!(f, "corrupt model config: {what}"),
            Self::Weights(e) => write!(f, "corrupt weight payload: {e}"),
        }
    }
}

impl std::error::Error for ModelIoError {}

impl From<WeightsError> for ModelIoError {
    fn from(e: WeightsError) -> Self {
        Self::Weights(e)
    }
}

/// FNV-1a over `bytes` (the container's integrity check; not
/// cryptographic, but it reliably catches the truncations and bit flips a
/// crashed writer or fault injection produces).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes a config as fixed-width fields (5 tag bytes, 5 u32 widths, the
/// u64 seed).
fn encode_config(out: &mut Vec<u8>, c: &ModelConfig) {
    out.push(match c.variant {
        ModelVariant::Full => 0,
        ModelVariant::GnnOnly => 1,
        ModelVariant::CnnOnly => 2,
    });
    out.push(match c.aggregation {
        Aggregation::Max => 0,
        Aggregation::Mean => 1,
    });
    out.push(u8::from(c.masking));
    out.push(u8::from(c.residual));
    out.push(u8::from(c.log_space));
    for v in [c.embed_dim, c.gnn_hidden, c.cnn_channels, c.grid, c.regressor_hidden] {
        out.extend_from_slice(&(v as u32).to_le_bytes());
    }
    out.extend_from_slice(&c.seed.to_le_bytes());
}

/// Byte length of [`encode_config`]'s output.
const CONFIG_LEN: usize = 5 + 5 * 4 + 8;

/// Decodes [`encode_config`] output, validating every field.
fn decode_config(b: &[u8]) -> Result<ModelConfig, ModelIoError> {
    if b.len() < CONFIG_LEN {
        return Err(ModelIoError::Truncated { needed: CONFIG_LEN, available: b.len() });
    }
    let variant = match b[0] {
        0 => ModelVariant::Full,
        1 => ModelVariant::GnnOnly,
        2 => ModelVariant::CnnOnly,
        _ => return Err(ModelIoError::BadConfig("unknown variant tag")),
    };
    let aggregation = match b[1] {
        0 => Aggregation::Max,
        1 => Aggregation::Mean,
        _ => return Err(ModelIoError::BadConfig("unknown aggregation tag")),
    };
    let flag = |i: usize, what: &'static str| match b[i] {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(ModelIoError::BadConfig(what)),
    };
    let word = |i: usize| -> usize {
        u32::from_le_bytes([b[5 + 4 * i], b[6 + 4 * i], b[7 + 4 * i], b[8 + 4 * i]]) as usize
    };
    let (embed_dim, gnn_hidden, cnn_channels, grid, regressor_hidden) =
        (word(0), word(1), word(2), word(3), word(4));
    for (v, what) in [
        (embed_dim, "embed_dim out of range"),
        (gnn_hidden, "gnn_hidden out of range"),
        (cnn_channels, "cnn_channels out of range"),
        (regressor_hidden, "regressor_hidden out of range"),
    ] {
        if v == 0 || v > MAX_WIDTH {
            return Err(ModelIoError::BadConfig(what));
        }
    }
    if grid == 0 || grid > MAX_GRID || !grid.is_multiple_of(4) {
        return Err(ModelIoError::BadConfig("grid must be a positive multiple of 4"));
    }
    let mut seed = [0u8; 8];
    seed.copy_from_slice(&b[25..33]);
    Ok(ModelConfig {
        variant,
        aggregation,
        masking: flag(2, "masking flag not 0/1")?,
        residual: flag(3, "residual flag not 0/1")?,
        log_space: flag(4, "log_space flag not 0/1")?,
        embed_dim,
        gnn_hidden,
        cnn_channels,
        grid,
        regressor_hidden,
        seed: u64::from_le_bytes(seed),
    })
}

/// Serializes a model (config + weights) into the versioned container.
pub fn save_model(model: &TimingModel) -> Vec<u8> {
    let payload = model.save_weights();
    let mut out = Vec::with_capacity(4 + 4 + CONFIG_LEN + 8 + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    encode_config(&mut out, model.config());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Loads a model from [`save_model`] bytes, reconstructing the
/// architecture from the embedded config.
///
/// # Errors
///
/// Returns a [`ModelIoError`] for any malformed input — wrong magic,
/// future version, truncation, checksum mismatch, corrupt config, or a
/// weight payload that does not match the declared architecture. No
/// partial model escapes on error.
pub fn load_model(bytes: &[u8]) -> Result<TimingModel, ModelIoError> {
    let header = 4 + 4 + CONFIG_LEN + 8;
    if bytes.len() < header + 8 {
        return Err(ModelIoError::Truncated { needed: header + 8, available: bytes.len() });
    }
    if bytes[0..4] != MAGIC {
        return Err(ModelIoError::BadMagic);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != VERSION {
        return Err(ModelIoError::UnsupportedVersion(version));
    }
    // Integrity first: nothing after the magic/version probe is trusted
    // until the checksum over everything-but-the-checksum matches.
    let body = &bytes[..bytes.len() - 8];
    let mut stored = [0u8; 8];
    stored.copy_from_slice(&bytes[bytes.len() - 8..]);
    let stored = u64::from_le_bytes(stored);
    let computed = fnv1a(body);
    if stored != computed {
        return Err(ModelIoError::Checksum { stored, computed });
    }
    let config = decode_config(&bytes[8..8 + CONFIG_LEN])?;
    let mut paylen = [0u8; 8];
    paylen.copy_from_slice(&bytes[8 + CONFIG_LEN..header]);
    let paylen = u64::from_le_bytes(paylen) as usize;
    let payload = &body[header..];
    if paylen != payload.len() {
        return Err(ModelIoError::Truncated { needed: paylen, available: payload.len() });
    }
    let mut model = TimingModel::new(config);
    model.load_weights(payload)?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> TimingModel {
        TimingModel::new(ModelConfig::tiny())
    }

    #[test]
    fn roundtrip_preserves_config_and_weights() {
        let model = tiny_model();
        let bytes = save_model(&model);
        let restored = load_model(&bytes).expect("roundtrip");
        assert_eq!(restored.config(), model.config());
        assert_eq!(restored.save_weights(), model.save_weights());
    }

    #[test]
    fn every_truncation_is_an_error() {
        let bytes = save_model(&tiny_model());
        // Exhaustive head truncations of the header region, then sampled
        // truncations through the payload (stride keeps the test fast).
        for cut in (0..64).chain((64..bytes.len()).step_by(97)) {
            assert!(load_model(&bytes[..cut]).is_err(), "truncation at {cut} accepted");
        }
    }

    #[test]
    fn bit_flips_are_caught_by_the_checksum() {
        let bytes = save_model(&tiny_model());
        for pos in (0..bytes.len()).step_by(131) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(load_model(&bad).is_err(), "bit flip at {pos} accepted");
        }
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let bytes = save_model(&tiny_model());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(load_model(&bad).unwrap_err(), ModelIoError::BadMagic);
        let mut bad = bytes;
        bad[4] = 99;
        // Re-seal so only the version is wrong (the checksum would
        // otherwise mask it).
        let n = bad.len();
        let sum = fnv1a(&bad[..n - 8]);
        bad[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(load_model(&bad).unwrap_err(), ModelIoError::UnsupportedVersion(99));
    }

    #[test]
    fn corrupt_config_fields_are_rejected_before_allocation() {
        let bytes = save_model(&tiny_model());
        // Blow up embed_dim (config word 0 starts at offset 8 + 5).
        let mut bad = bytes;
        bad[13..17].copy_from_slice(&u32::MAX.to_le_bytes());
        let n = bad.len();
        let sum = fnv1a(&bad[..n - 8]);
        bad[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            load_model(&bad).unwrap_err(),
            ModelIoError::BadConfig("embed_dim out of range")
        );
    }

    #[test]
    fn arbitrary_garbage_never_panics() {
        // Deterministic pseudo-garbage at a few lengths, including ones
        // long enough to pass the length probe.
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for len in [0usize, 3, 16, 64, 256, 4096] {
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *b = (x & 0xff) as u8;
            }
            assert!(load_model(&buf).is_err());
        }
    }
}
