//! End-to-end tests of the `restructure-timing` command-line tool: the
//! gen → sta → opt file-interchange loop on real temp files.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_restructure-timing"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rtt_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn gen_sta_opt_pipeline_roundtrips_through_files() {
    let dir = tmpdir("pipeline");
    // gen
    let out = bin()
        .args(["gen", "--design", "xgate", "--scale", "tiny", "--out"])
        .arg(&dir)
        .output()
        .expect("run gen");
    assert!(out.status.success(), "gen failed: {}", String::from_utf8_lossy(&out.stderr));
    let v = dir.join("xgate.v");
    let p = dir.join("xgate.place");
    assert!(v.exists() && p.exists());

    // sta
    let out = bin()
        .args(["sta", "--netlist"])
        .arg(&v)
        .arg("--placement")
        .arg(&p)
        .output()
        .expect("run sta");
    assert!(out.status.success(), "sta failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("wns"), "sta output missing wns: {text}");
    assert!(text.contains("worst endpoints"));

    // opt (tight period forces work)
    let out = bin()
        .args(["opt", "--netlist"])
        .arg(&v)
        .arg("--placement")
        .arg(&p)
        .args(["--period", "120", "--out"])
        .arg(&dir)
        .output()
        .expect("run opt");
    assert!(out.status.success(), "opt failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(dir.join("xgate_opt.v").exists());
    assert!(dir.join("xgate_opt.place").exists());

    // The optimized design re-enters the flow cleanly.
    let out = bin()
        .args(["sta", "--netlist"])
        .arg(dir.join("xgate_opt.v"))
        .arg("--placement")
        .arg(dir.join("xgate_opt.place"))
        .args(["--period", "120"])
        .output()
        .expect("run sta on optimized design");
    assert!(out.status.success(), "sta2 failed: {}", String::from_utf8_lossy(&out.stderr));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_command_and_missing_args_fail_cleanly() {
    let out = bin().arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out =
        bin().args(["gen", "--design", "no_such_design", "--out", "/tmp"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown design"));

    let out = bin().arg("sta").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing --netlist"));
}

#[test]
fn trace_out_writes_well_formed_json() {
    let dir = tmpdir("trace");
    let path = dir.join("trace.json");
    let out = bin()
        .args(["flow", "--design", "chacha", "--scale", "tiny", "--trace", "--trace-out"])
        .arg(&path)
        .output()
        .expect("run flow with trace");
    assert!(out.status.success(), "flow failed: {}", String::from_utf8_lossy(&out.stderr));
    // --trace prints the human tree to stderr.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("flow::design_flow"), "span tree missing: {stderr}");

    let text = std::fs::read_to_string(&path).expect("trace file exists");
    let doc = restructure_timing::obs::json::Value::parse(&text).expect("trace JSON parses");
    let structure = doc.get("structure").expect("structure member");
    let spans = structure.get("spans").expect("spans member");
    for span in ["flow::design_flow", "flow::design_flow/opt::optimize"] {
        assert!(spans.get(span).is_some(), "trace missing span `{span}`");
    }
    // Durations live outside the structural member.
    assert!(doc.get("timing_ms").is_some());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_structure_is_identical_across_thread_counts() {
    let dir = tmpdir("trace_threads");
    let mut structures = Vec::new();
    for threads in ["1", "4"] {
        let path = dir.join(format!("trace_{threads}.json"));
        let out = bin()
            .args(["flow", "--design", "chacha", "--scale", "tiny", "--trace-out"])
            .arg(&path)
            .env("RTT_THREADS", threads)
            .output()
            .expect("run flow");
        assert!(out.status.success(), "flow failed: {}", String::from_utf8_lossy(&out.stderr));
        let text = std::fs::read_to_string(&path).expect("trace file");
        let doc = restructure_timing::obs::json::Value::parse(&text).expect("trace JSON parses");
        structures.push(doc.get("structure").expect("structure member").to_string());
    }
    assert_eq!(structures[0], structures[1], "span tree / counters must not depend on RTT_THREADS");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_out_to_unwritable_path_fails() {
    let out = bin()
        .args([
            "flow",
            "--design",
            "chacha",
            "--scale",
            "tiny",
            "--trace-out",
            "/nonexistent_dir_rtt/trace.json",
        ])
        .output()
        .expect("run flow");
    assert!(!out.status.success(), "unwritable --trace-out must exit nonzero");
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
}

#[test]
fn flow_command_prints_replacement_summary() {
    let out =
        bin().args(["flow", "--design", "chacha", "--scale", "tiny"]).output().expect("run flow");
    assert!(out.status.success(), "flow failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(text.contains("without opt"));
    assert!(text.contains("with opt"));
    assert!(text.contains("replaced"));
}
