//! Synthetic standard-cell library modelled loosely on the ASAP7 PDK.
//!
//! The paper synthesizes with the 7-nm ASAP7 library; we cannot ship that
//! proprietary-adjacent data, so [`CellLibrary::asap7_like`] generates a
//! deterministic family of cells with the attributes the timing models and
//! the paper's input features actually consume: per-pin capacitance, drive
//! resistance (derived from drive strength), intrinsic delay, area, and the
//! gate function used for the one-hot *gate type* feature.

use crate::CellTypeId;

/// Drive strengths available for every combinational function, mirroring the
/// `x1/x2/x4/x8` taxonomy of commercial libraries.
pub const DRIVE_STRENGTHS: [u8; 4] = [1, 2, 4, 8];

/// Logic function implemented by a cell type.
///
/// The variants double as the *gate type* one-hot categories of the paper's
/// netlist features (Section IV-A, feature 3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[non_exhaustive]
pub enum GateFn {
    /// Non-inverting buffer (1 input). Inserted by the timing optimizer.
    Buf,
    /// Inverter (1 input).
    Inv,
    /// 2-input AND.
    And2,
    /// 3-input AND.
    And3,
    /// 4-input AND.
    And4,
    /// 2-input OR.
    Or2,
    /// 3-input OR.
    Or3,
    /// 4-input OR.
    Or4,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer (3 inputs: a, b, sel).
    Mux2,
    /// And-Or-Invert 2-2 (4 inputs), a common restructuring target.
    Aoi22,
    /// D flip-flop (1 data input; the clock network is not modelled).
    Dff,
}

impl GateFn {
    /// All gate functions, in one-hot encoding order.
    pub const ALL: [GateFn; 15] = [
        GateFn::Buf,
        GateFn::Inv,
        GateFn::And2,
        GateFn::And3,
        GateFn::And4,
        GateFn::Or2,
        GateFn::Or3,
        GateFn::Or4,
        GateFn::Nand2,
        GateFn::Nor2,
        GateFn::Xor2,
        GateFn::Xnor2,
        GateFn::Mux2,
        GateFn::Aoi22,
        GateFn::Dff,
    ];

    /// Number of input pins of this function.
    pub fn num_inputs(self) -> usize {
        match self {
            GateFn::Buf | GateFn::Inv | GateFn::Dff => 1,
            GateFn::And2
            | GateFn::Or2
            | GateFn::Nand2
            | GateFn::Nor2
            | GateFn::Xor2
            | GateFn::Xnor2 => 2,
            GateFn::And3 | GateFn::Or3 | GateFn::Mux2 => 3,
            GateFn::And4 | GateFn::Or4 | GateFn::Aoi22 => 4,
        }
    }

    /// Index of this function in the one-hot gate-type encoding.
    ///
    /// `ALL` lists the variants in declaration order, so the discriminant
    /// *is* the one-hot index (`one_hot_indices_are_dense_and_unique`
    /// asserts the round trip).
    pub fn one_hot_index(self) -> usize {
        self as usize
    }

    /// `true` for sequential elements (timing-graph cut points).
    pub fn is_sequential(self) -> bool {
        matches!(self, GateFn::Dff)
    }

    /// Short library-style mnemonic, e.g. `AND3` or `DFF`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateFn::Buf => "BUF",
            GateFn::Inv => "INV",
            GateFn::And2 => "AND2",
            GateFn::And3 => "AND3",
            GateFn::And4 => "AND4",
            GateFn::Or2 => "OR2",
            GateFn::Or3 => "OR3",
            GateFn::Or4 => "OR4",
            GateFn::Nand2 => "NAND2",
            GateFn::Nor2 => "NOR2",
            GateFn::Xor2 => "XOR2",
            GateFn::Xnor2 => "XNOR2",
            GateFn::Mux2 => "MUX2",
            GateFn::Aoi22 => "AOI22",
            GateFn::Dff => "DFF",
        }
    }
}

impl std::fmt::Display for GateFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A cell master: one logic function at one drive strength, with the timing
/// and physical attributes used by STA, placement, and feature extraction.
#[derive(Clone, Debug, PartialEq)]
pub struct CellType {
    /// Library name, e.g. `AND3_X4`.
    pub name: String,
    /// Logic function.
    pub gate: GateFn,
    /// Drive strength multiplier (one of [`DRIVE_STRENGTHS`]).
    pub drive: u8,
    /// Output drive resistance in kΩ. Larger cells drive harder (lower R).
    pub drive_res_kohm: f32,
    /// Input pin capacitance in fF (identical across input pins).
    pub pin_cap_ff: f32,
    /// Intrinsic (unloaded) delay in ps.
    pub intrinsic_ps: f32,
    /// Cell area in µm² (used by placement density).
    pub area_um2: f32,
}

impl CellType {
    /// Number of input pins.
    pub fn num_inputs(&self) -> usize {
        self.gate.num_inputs()
    }

    /// `true` for sequential cells.
    pub fn is_sequential(&self) -> bool {
        self.gate.is_sequential()
    }
}

/// A deterministic synthetic standard-cell library.
///
/// Every combinational [`GateFn`] is available at the four
/// [`DRIVE_STRENGTHS`]; the flip-flop exists at strengths 1 and 2.
#[derive(Clone, Debug)]
pub struct CellLibrary {
    types: Vec<CellType>,
}

impl CellLibrary {
    /// Builds the default ASAP7-flavoured library.
    ///
    /// The absolute numbers are synthetic but dimensionally consistent:
    /// resistance in kΩ, capacitance in fF, so `R · C` is directly in ps.
    pub fn asap7_like() -> Self {
        let mut types = Vec::new();
        for &gate in &GateFn::ALL {
            let strengths: &[u8] = if gate.is_sequential() { &[1, 2] } else { &DRIVE_STRENGTHS };
            // Base electrical characteristics scale with logic complexity.
            let (base_res, base_cap, base_intr, base_area) = match gate {
                GateFn::Buf => (6.0, 0.7, 4.0, 0.30),
                GateFn::Inv => (5.0, 0.6, 3.0, 0.25),
                GateFn::And2 | GateFn::Or2 => (8.0, 0.8, 8.0, 0.45),
                GateFn::Nand2 | GateFn::Nor2 => (7.0, 0.8, 6.0, 0.40),
                GateFn::And3 | GateFn::Or3 => (9.0, 0.9, 11.0, 0.60),
                GateFn::And4 | GateFn::Or4 => (10.0, 1.0, 14.0, 0.75),
                GateFn::Xor2 | GateFn::Xnor2 => (9.5, 1.1, 12.0, 0.70),
                GateFn::Mux2 => (9.0, 1.0, 10.0, 0.65),
                GateFn::Aoi22 => (10.5, 1.0, 13.0, 0.80),
                GateFn::Dff => (7.5, 0.9, 22.0, 1.60),
            };
            for &s in strengths {
                let sf = f32::from(s);
                types.push(CellType {
                    name: format!("{}_X{s}", gate.mnemonic()),
                    gate,
                    drive: s,
                    // Stronger drive => proportionally lower output resistance.
                    drive_res_kohm: base_res / sf,
                    // Stronger drive => larger input transistors => more cap.
                    pin_cap_ff: base_cap * (1.0 + 0.35 * (sf - 1.0)),
                    // Intrinsic delay shrinks mildly with size.
                    intrinsic_ps: base_intr * (1.0 - 0.06 * (sf.log2())),
                    area_um2: base_area * (0.6 + 0.4 * sf),
                });
            }
        }
        Self { types }
    }

    /// Number of cell types in the library.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// `true` if the library has no cell types.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Returns the cell type with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cell_type(&self, id: CellTypeId) -> &CellType {
        &self.types[id.index()]
    }

    /// Iterates over `(id, type)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CellTypeId, &CellType)> {
        self.types.iter().enumerate().map(|(i, t)| (CellTypeId::from_index(i), t))
    }

    /// Finds the type implementing `gate` at exactly drive strength `drive`.
    pub fn pick(&self, gate: GateFn, drive: u8) -> Option<CellTypeId> {
        self.iter().find(|(_, t)| t.gate == gate && t.drive == drive).map(|(id, _)| id)
    }

    /// Finds the next stronger variant of `id`, if any.
    pub fn upsize(&self, id: CellTypeId) -> Option<CellTypeId> {
        let t = self.cell_type(id);
        self.iter()
            .filter(|(_, c)| c.gate == t.gate && c.drive > t.drive)
            .min_by_key(|(_, c)| c.drive)
            .map(|(id, _)| id)
    }

    /// Finds the next weaker variant of `id`, if any.
    pub fn downsize(&self, id: CellTypeId) -> Option<CellTypeId> {
        let t = self.cell_type(id);
        self.iter()
            .filter(|(_, c)| c.gate == t.gate && c.drive < t.drive)
            .max_by_key(|(_, c)| c.drive)
            .map(|(id, _)| id)
    }

    /// All drive variants for a gate function, weakest first.
    pub fn variants(&self, gate: GateFn) -> Vec<CellTypeId> {
        let mut v: Vec<(u8, CellTypeId)> =
            self.iter().filter(|(_, t)| t.gate == gate).map(|(id, t)| (t.drive, id)).collect();
        v.sort_unstable_by_key(|(d, _)| *d);
        v.into_iter().map(|(_, id)| id).collect()
    }

    /// Number of distinct gate functions (one-hot feature width).
    pub fn gate_fn_count(&self) -> usize {
        GateFn::ALL.len()
    }
}

impl Default for CellLibrary {
    fn default() -> Self {
        Self::asap7_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_covers_all_functions_and_strengths() {
        let lib = CellLibrary::asap7_like();
        for &g in &GateFn::ALL {
            let variants = lib.variants(g);
            let expected = if g.is_sequential() { 2 } else { DRIVE_STRENGTHS.len() };
            assert_eq!(variants.len(), expected, "{g}");
        }
    }

    #[test]
    fn stronger_cells_drive_harder_but_load_more() {
        let lib = CellLibrary::asap7_like();
        let x1 = lib.cell_type(lib.pick(GateFn::Nand2, 1).unwrap());
        let x8 = lib.cell_type(lib.pick(GateFn::Nand2, 8).unwrap());
        assert!(x8.drive_res_kohm < x1.drive_res_kohm);
        assert!(x8.pin_cap_ff > x1.pin_cap_ff);
        assert!(x8.area_um2 > x1.area_um2);
    }

    #[test]
    fn upsize_downsize_walk_the_strength_ladder() {
        let lib = CellLibrary::asap7_like();
        let x1 = lib.pick(GateFn::Buf, 1).unwrap();
        let x2 = lib.upsize(x1).unwrap();
        assert_eq!(lib.cell_type(x2).drive, 2);
        assert_eq!(lib.downsize(x2), Some(x1));
        let x8 = lib.pick(GateFn::Buf, 8).unwrap();
        assert_eq!(lib.upsize(x8), None);
        assert_eq!(lib.downsize(x1), None);
    }

    #[test]
    fn one_hot_indices_are_dense_and_unique() {
        let mut seen = vec![false; GateFn::ALL.len()];
        for &g in &GateFn::ALL {
            let i = g.one_hot_index();
            assert_eq!(GateFn::ALL[i], g, "ALL must stay in declaration order");
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn names_follow_library_convention() {
        let lib = CellLibrary::asap7_like();
        let id = lib.pick(GateFn::Aoi22, 4).unwrap();
        assert_eq!(lib.cell_type(id).name, "AOI22_X4");
    }

    #[test]
    fn input_counts_match_function() {
        assert_eq!(GateFn::Mux2.num_inputs(), 3);
        assert_eq!(GateFn::Aoi22.num_inputs(), 4);
        assert_eq!(GateFn::Dff.num_inputs(), 1);
        let lib = CellLibrary::asap7_like();
        for (_, t) in lib.iter() {
            assert_eq!(t.num_inputs(), t.gate.num_inputs());
        }
    }
}
