//! The two-stage baselines: local stage-delay regression + PERT assembly.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rtt_netlist::{EdgeKind, GateFn, PinDir, PinId};
use rtt_nn::{mse, Adam, Exec, InferCtx, Mlp, ParamStore, Tape, Tensor};
use rtt_route::{route, RouteConfig};
use rtt_sta::propagate;

use crate::BaselineInputs;

/// Which published two-stage method to emulate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TwoStageKind {
    /// Barboza et al., DAC 2019: handcrafted local features.
    Dac19,
    /// He et al., DAC 2022: adds a look-ahead RC (detour-free Elmore)
    /// stage-delay estimate as a feature.
    Dac22He,
}

impl TwoStageKind {
    fn feature_dim(self) -> usize {
        let base = 7 + GateFn::ALL.len();
        match self {
            TwoStageKind::Dac19 => base,
            TwoStageKind::Dac22He => base + 1,
        }
    }

    /// Human-readable name as used in Table II.
    pub fn label(self) -> &'static str {
        match self {
            TwoStageKind::Dac19 => "DAC19",
            TwoStageKind::Dac22He => "DAC22-he",
        }
    }
}

/// Per-design stage features: one row per net edge of the input graph.
struct StageFeatures {
    /// `(driver, sink)` keys, aligned with feature rows.
    edges: Vec<(PinId, PinId)>,
    feats: Tensor,
}

fn extract_features(inputs: &BaselineInputs<'_>, kind: TwoStageKind) -> StageFeatures {
    let dim = kind.feature_dim();
    let dist_norm = rtt_features::DIST_NORM_UM;
    // Look-ahead RC network: an estimated detour-free routing (He et al.).
    let lookahead = (kind == TwoStageKind::Dac22He).then(|| {
        let cfg = RouteConfig { detour_strength: 0.0, macro_detour: 0.0, ..RouteConfig::default() };
        route(inputs.netlist, inputs.library, inputs.placement, &cfg)
    });

    let mut edges = Vec::new();
    let mut data = Vec::new();
    for e in inputs.graph.edges() {
        if e.kind != EdgeKind::Net {
            continue;
        }
        let driver = inputs.graph.pin_of(e.from);
        let sink = inputs.graph.pin_of(e.to);
        // Net edges always carry their net id; skip rather than assume.
        let Some(net_id) = e.net else { continue };
        let net = inputs.netlist.net(net_id);

        let dp = inputs.placement.pin_position(inputs.netlist, driver);
        let sp = inputs.placement.pin_position(inputs.netlist, sink);
        let mut row = vec![0.0f32; dim];
        row[0] = dp.manhattan(sp) / dist_norm;
        row[1] = (1.0 + net.sinks.len() as f32).log2();
        if let Some(cid) = inputs.netlist.pin(driver).cell {
            let ty = inputs.library.cell_type(inputs.netlist.cell(cid).type_id);
            row[2] = f32::from(ty.drive) / 8.0;
            row[3] = ty.intrinsic_ps / 20.0;
            row[4] = ty.drive_res_kohm / 10.0;
            row[7 + ty.gate.one_hot_index()] = 1.0;
        }
        row[5] = match inputs.netlist.pin(sink).cell {
            Some(c) => inputs.library.cell_type(inputs.netlist.cell(c).type_id).pin_cap_ff / 2.0,
            None => 0.5,
        };
        // Star-estimate of the driver's total load.
        let rc = RouteConfig::default();
        row[6] = net
            .sinks
            .iter()
            .map(|&s| {
                let p = inputs.placement.pin_position(inputs.netlist, s);
                dp.manhattan(p) * rc.unit_cap_ff_per_um
            })
            .sum::<f32>()
            / 10.0;
        // A net the look-ahead router skipped contributes no RC estimate
        // (feature stays 0) instead of sinking the whole extraction.
        if let Some(rn) = lookahead.as_ref().and_then(|la| la.net(net_id)) {
            let wire = rn.sink_delay(sink).unwrap_or(0.0);
            let cell = match inputs.netlist.pin(driver).cell {
                Some(cid) => {
                    let ty = inputs.library.cell_type(inputs.netlist.cell(cid).type_id);
                    ty.intrinsic_ps + ty.drive_res_kohm * rn.total_cap_ff
                }
                None => 0.0,
            };
            row[dim - 1] = (wire + cell) / 50.0;
        }
        edges.push((driver, sink));
        data.extend_from_slice(&row);
    }
    let n = edges.len().max(1);
    StageFeatures { edges, feats: Tensor::from_vec(&[n, dim], data) }
}

/// A two-stage baseline: MLP stage-delay regressor + PERT traversal.
#[derive(Debug)]
pub struct TwoStageModel {
    kind: TwoStageKind,
    store: ParamStore,
    mlp: Mlp,
    label_mean: f32,
    label_std: f32,
    rng: StdRng,
}

impl TwoStageModel {
    /// Creates an untrained model.
    pub fn new(kind: TwoStageKind, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, &mut rng, &[kind.feature_dim(), 32, 32, 1]);
        Self { kind, store, mlp, label_mean: 0.0, label_std: 1.0, rng }
    }

    /// The emulated method.
    pub fn kind(&self) -> TwoStageKind {
        self.kind
    }

    /// Trains on the surviving stage labels of the given designs
    /// (semi-supervised: replaced stages have no labels).
    pub fn train(&mut self, designs: &[&BaselineInputs<'_>], epochs: usize, lr: f32) {
        rtt_obs::span!("baselines::two_stage_train");
        // Assemble the supervised subset.
        let mut rows: Vec<f32> = Vec::new();
        let mut labels: Vec<f32> = Vec::new();
        let dim = self.kind.feature_dim();
        for d in designs {
            let sf = extract_features(d, self.kind);
            for (i, &(driver, sink)) in sf.edges.iter().enumerate() {
                if let Some(l) = d.stage_label(driver, sink) {
                    rows.extend_from_slice(sf.feats.row(i));
                    labels.push(l);
                }
            }
        }
        if labels.is_empty() {
            return;
        }
        // Stage delays span several orders of magnitude; regress in log
        // space (same adaptation as the main model — see DESIGN.md).
        let encoded: Vec<f32> = labels.iter().map(|&l| (1.0 + l.max(0.0)).ln()).collect();
        let n = encoded.len();
        self.label_mean = encoded.iter().sum::<f32>() / n as f32;
        let var = encoded.iter().map(|l| (l - self.label_mean).powi(2)).sum::<f32>() / n as f32;
        self.label_std = var.sqrt().max(1e-6);
        let normalized: Vec<f32> =
            encoded.iter().map(|l| (l - self.label_mean) / self.label_std).collect();

        let batch = 1024.min(n);
        let mut adam = Adam::new(lr);
        for _ in 0..epochs {
            // One random batch per epoch-step keeps CPU cost bounded.
            let mut bx = Vec::with_capacity(batch * dim);
            let mut by = Vec::with_capacity(batch);
            for _ in 0..batch {
                let i = self.rng.gen_range(0..n);
                bx.extend_from_slice(&rows[i * dim..(i + 1) * dim]);
                by.push(normalized[i]);
            }
            let tape = Tape::new();
            let x = tape.constant(Tensor::from_vec(&[batch, dim], bx));
            let y = tape.constant(Tensor::from_vec(&[batch, 1], by));
            let pred = self.mlp.forward(&tape, &self.store, x);
            let loss = mse(&tape, pred, y);
            let grads = tape.backward(loss);
            adam.step(&mut self.store, &grads);
        }
    }

    /// Raw regressor outputs for a feature matrix, on any backend.
    fn stage_values<E: Exec>(&self, ex: E, feats: Tensor) -> Tensor {
        let x = ex.constant(feats);
        ex.value(self.mlp.forward(ex, &self.store, x))
    }

    fn decode_stages(
        &self,
        edges: Vec<(PinId, PinId)>,
        vals: &Tensor,
    ) -> HashMap<(PinId, PinId), f32> {
        edges
            .into_iter()
            .enumerate()
            .map(|(i, k)| {
                let encoded = vals.data()[i] * self.label_std + self.label_mean;
                (k, encoded.exp() - 1.0)
            })
            .collect()
    }

    /// Predicts the stage delay of every net edge of a design (tape-free
    /// backend).
    ///
    /// Runs the regressor straight over the feature matrix with the
    /// buffer-reusing MLP kernels (no constant copy, no per-layer
    /// allocation). Bit-identical to [`Self::predict_stages_taped`]
    /// (asserted by the equivalence suite).
    // rtt-lint: entry
    pub fn predict_stages(&self, inputs: &BaselineInputs<'_>) -> HashMap<(PinId, PinId), f32> {
        let sf = extract_features(inputs, self.kind);
        let ctx = InferCtx::new();
        ctx.with_scratch(3, |bufs, _, _| {
            let [t0, t1, out] = bufs else { unreachable!("scratch pool sized to 3 above") };
            self.mlp.forward_into(&self.store, &sf.feats, t0, t1, out);
            self.decode_stages(sf.edges, out)
        })
    }

    /// Reference implementation of [`Self::predict_stages`] on the tape
    /// backend; the equivalence suite asserts bit-identical outputs.
    pub fn predict_stages_taped(
        &self,
        inputs: &BaselineInputs<'_>,
    ) -> HashMap<(PinId, PinId), f32> {
        let sf = extract_features(inputs, self.kind);
        let vals = self.stage_values(&Tape::new(), sf.feats);
        self.decode_stages(sf.edges, &vals)
    }

    /// `(prediction, label)` pairs on the *surviving* stages — the data
    /// behind the left columns of Table II.
    pub fn local_eval(&self, inputs: &BaselineInputs<'_>) -> Vec<(f32, f32)> {
        let stages = self.predict_stages(inputs);
        stages.iter().filter_map(|(&(d, s), &p)| inputs.stage_label(d, s).map(|l| (p, l))).collect()
    }

    /// Assembles endpoint arrival times by PERT traversal over the
    /// predicted stage delays (cell arcs fold into the stage of their
    /// output net edge).
    // rtt-lint: entry
    pub fn predict_endpoints(&self, inputs: &BaselineInputs<'_>) -> Vec<f32> {
        self.assemble_endpoints(inputs, &self.predict_stages(inputs))
    }

    /// Reference implementation of [`Self::predict_endpoints`] via
    /// [`Self::predict_stages_taped`].
    pub fn predict_endpoints_taped(&self, inputs: &BaselineInputs<'_>) -> Vec<f32> {
        self.assemble_endpoints(inputs, &self.predict_stages_taped(inputs))
    }

    fn assemble_endpoints(
        &self,
        inputs: &BaselineInputs<'_>,
        stages: &HashMap<(PinId, PinId), f32>,
    ) -> Vec<f32> {
        let graph = inputs.graph;
        let arrivals = propagate(
            graph,
            |e| match e.kind {
                EdgeKind::Net => stages
                    .get(&(graph.pin_of(e.from), graph.pin_of(e.to)))
                    .copied()
                    .unwrap_or(0.0)
                    .max(0.0),
                EdgeKind::Cell => 0.0,
            },
            |v| {
                let pin = inputs.netlist.pin(graph.pin_of(v));
                match (pin.cell, pin.dir) {
                    (Some(c), PinDir::Drive) => {
                        let ty = inputs.library.cell_type(inputs.netlist.cell(c).type_id);
                        if ty.is_sequential() {
                            ty.intrinsic_ps
                        } else {
                            0.0
                        }
                    }
                    _ => 0.0,
                }
            },
        );
        graph.endpoints().iter().map(|&v| arrivals[v as usize]).collect()
    }
}
