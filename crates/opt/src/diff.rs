//! Structural diff between a netlist and its optimized version.
//!
//! Because ids are stable under tombstoning, the replacement statistics of
//! the paper's Table I are exact set operations:
//!
//! * a **net edge** `(driver, sink)` of the input netlist is *replaced* if
//!   the sink is no longer directly driven by that driver in the optimized
//!   netlist (buffer insertion, driver change, net removal, pin death);
//! * a **cell edge** is *replaced* if its cell was removed (decomposition,
//!   bypass, dead-logic sweep). Gate sizing keeps the cell alive and is
//!   *not* a replacement — matching the paper, which measures sizing churn
//!   as Δdelay on unreplaced cells.

use rtt_netlist::{CellLibrary, Netlist, PinId};

/// Replacement statistics between an input netlist and its optimized form.
#[derive(Clone, Debug, Default)]
pub struct NetlistDiff {
    /// Net edges in the input netlist.
    pub total_net_edges: usize,
    /// Input net edges no longer present after optimization.
    pub replaced_net_edges: usize,
    /// Cell edges (combinational input→output arcs) in the input netlist.
    pub total_cell_edges: usize,
    /// Input cell edges whose cell was removed.
    pub replaced_cell_edges: usize,
    surviving_net: Vec<(PinId, PinId)>,
    surviving_cell: Vec<(PinId, PinId)>,
}

impl NetlistDiff {
    /// Fraction of input net edges replaced (Table I `#replaced`, nets).
    pub fn net_replaced_fraction(&self) -> f64 {
        fraction(self.replaced_net_edges, self.total_net_edges)
    }

    /// Fraction of input cell edges replaced (Table I `#replaced`, cells).
    pub fn cell_replaced_fraction(&self) -> f64 {
        fraction(self.replaced_cell_edges, self.total_cell_edges)
    }

    /// Input net edges `(driver, sink)` that survived unchanged.
    pub fn surviving_net_edges(&self) -> &[(PinId, PinId)] {
        &self.surviving_net
    }

    /// Input cell edges `(input, output)` whose cell survived.
    pub fn surviving_cell_edges(&self) -> &[(PinId, PinId)] {
        &self.surviving_cell
    }
}

fn fraction(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

/// Diffs `before` (pre-optimization input) against `after` (optimized).
///
/// Both netlists must share an id space, i.e. `after` must have been
/// produced by mutating a clone of `before`.
pub fn diff_netlists(before: &Netlist, after: &Netlist, library: &CellLibrary) -> NetlistDiff {
    let mut diff = NetlistDiff::default();

    for (_, net) in before.nets() {
        let driver = net.driver;
        for &sink in &net.sinks {
            diff.total_net_edges += 1;
            let survives = sink.index() < after.pin_capacity()
                && after.pin(sink).is_alive()
                && after.pin(driver).is_alive()
                && after
                    .pin(sink)
                    .net
                    .is_some_and(|n| after.net(n).is_alive() && after.net(n).driver == driver);
            if survives {
                diff.surviving_net.push((driver, sink));
            } else {
                diff.replaced_net_edges += 1;
            }
        }
    }

    for (cid, cell) in before.cells() {
        if library.cell_type(cell.type_id).is_sequential() {
            continue; // sequential arcs are cut from the timing graph
        }
        let survives = after.cell(cid).is_alive();
        for &input in &cell.inputs {
            diff.total_cell_edges += 1;
            if survives {
                diff.surviving_cell.push((input, cell.output));
            } else {
                diff.replaced_cell_edges += 1;
            }
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transforms::{bypass_repeater, insert_buffer};
    use rtt_circgen::ripple_carry_adder;
    use rtt_netlist::{CellLibrary, GateFn};
    use rtt_place::{place, PlaceConfig, Point};

    #[test]
    fn identity_diff_replaces_nothing() {
        let lib = CellLibrary::asap7_like();
        let nl = ripple_carry_adder(4, &lib);
        let d = diff_netlists(&nl, &nl, &lib);
        assert_eq!(d.replaced_net_edges, 0);
        assert_eq!(d.replaced_cell_edges, 0);
        assert!(d.total_net_edges > 0);
        assert!(d.total_cell_edges > 0);
        assert_eq!(d.net_replaced_fraction(), 0.0);
        assert_eq!(d.surviving_net_edges().len(), d.total_net_edges);
    }

    #[test]
    fn buffer_insertion_replaces_exactly_one_net_edge() {
        let lib = CellLibrary::asap7_like();
        let before = ripple_carry_adder(4, &lib);
        let mut after = before.clone();
        let mut pl = place(&after, &lib, 0, &PlaceConfig::default());
        let (net, sink) = {
            let (nid, n) = after.nets().find(|(_, n)| n.sinks.len() == 1).unwrap();
            (nid, n.sinks[0])
        };
        insert_buffer(&mut after, &mut pl, &lib, net, sink, Point::new(0.5, 0.5)).unwrap();
        let d = diff_netlists(&before, &after, &lib);
        assert_eq!(d.replaced_net_edges, 1);
        assert_eq!(d.replaced_cell_edges, 0);
    }

    #[test]
    fn bypass_replaces_cell_edges_and_net_edges() {
        let lib = CellLibrary::asap7_like();
        let mut before = rtt_netlist::Netlist::new("b");
        let a = before.add_input_port("a");
        let buf = lib.pick(GateFn::Buf, 1).unwrap();
        let (c, o) = before.add_cell("u", buf, &lib);
        let i = before.cell(c).inputs[0];
        before.connect_net("ni", a, &[i]).unwrap();
        let y = before.add_output_port("y");
        before.connect_net("no", o, &[y]).unwrap();

        let mut after = before.clone();
        bypass_repeater(&mut after, &lib, c).unwrap();
        let d = diff_netlists(&before, &after, &lib);
        // Edges a->i and o->y are both gone; the buffer cell edge is gone.
        assert_eq!(d.replaced_net_edges, 2);
        assert_eq!(d.replaced_cell_edges, 1);
        assert_eq!(d.cell_replaced_fraction(), 1.0);
    }

    #[test]
    fn resize_is_not_a_replacement() {
        let lib = CellLibrary::asap7_like();
        let before = ripple_carry_adder(4, &lib);
        let mut after = before.clone();
        let (cid, cell) = after
            .cells()
            .find(|(_, c)| !lib.cell_type(c.type_id).is_sequential())
            .map(|(id, c)| (id, c.clone()))
            .unwrap();
        let up = lib.pick(lib.cell_type(cell.type_id).gate, 8).unwrap();
        after.resize_cell(cid, up, &lib).unwrap();
        let d = diff_netlists(&before, &after, &lib);
        assert_eq!(d.replaced_net_edges, 0);
        assert_eq!(d.replaced_cell_edges, 0);
    }

    #[test]
    fn sequential_cells_do_not_count_as_cell_edges() {
        let lib = CellLibrary::asap7_like();
        let nl = ripple_carry_adder(2, &lib);
        let d = diff_netlists(&nl, &nl, &lib);
        let comb_inputs: usize = nl
            .cells()
            .filter(|(_, c)| !lib.cell_type(c.type_id).is_sequential())
            .map(|(_, c)| c.inputs.len())
            .sum();
        assert_eq!(d.total_cell_edges, comb_inputs);
    }
}
