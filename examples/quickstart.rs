//! Quickstart: the whole pipeline on one small design.
//!
//! Generates a design, runs both flows (with/without timing optimization),
//! trains a small multimodal model on the sign-off labels, and reports the
//! prediction quality.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

#![allow(clippy::print_stdout)] // reports/tables go to stdout by design

use restructure_timing::prelude::*;

fn main() {
    // 1. A design and its physical implementation.
    let lib = CellLibrary::asap7_like();
    let design = preset("chacha", Scale::Small).expect("known preset").generate(&lib);
    let mut netlist = design.netlist.clone();
    let mut placement = place(&netlist, &lib, design.num_macros, &PlaceConfig::default());
    println!(
        "design {}: {} cells, {} nets, die {:.0} µm²",
        netlist.name,
        netlist.num_cells(),
        netlist.num_nets(),
        placement.floorplan().die.area()
    );

    // 2. Pre-optimization timing defines the clock target.
    let graph = TimingGraph::build(&netlist, &lib);
    let routing = route(&netlist, &lib, &placement, &RouteConfig::default());
    let probe = run_sta(&netlist, &lib, &graph, WireModel::Routed(&routing), 1.0);
    let period = probe.max_arrival() * 0.6;
    println!("critical path {:.1} ps, clock target {:.1} ps", probe.max_arrival(), period);

    // 3. Timing optimization restructures the netlist.
    let input_netlist = netlist.clone();
    let report = optimize(
        &mut netlist,
        &mut placement,
        &lib,
        &OptConfig { clock_period_ps: period, ..OptConfig::default() },
    );
    let diff = diff_netlists(&input_netlist, &netlist, &lib);
    println!(
        "optimizer: wns {:.1} -> {:.1} ps; {} sizings, {} buffers, {} decompositions, \
         {} bypasses; {:.1}% net edges and {:.1}% cell edges replaced",
        report.wns_before,
        report.wns_after,
        report.sizing_ops,
        report.buffer_ops,
        report.decompose_ops,
        report.bypass_ops,
        diff.net_replaced_fraction() * 100.0,
        diff.cell_replaced_fraction() * 100.0,
    );

    // 4. Sign-off labels from the optimized design.
    let opt_graph = TimingGraph::build(&netlist, &lib);
    let opt_routing = route(&netlist, &lib, &placement, &RouteConfig::default());
    let signoff = run_sta(&netlist, &lib, &opt_graph, WireModel::Routed(&opt_routing), period);

    // 5. Train the paper's model: inputs are PRE-optimization netlist +
    //    placement; targets are POST-optimization sign-off arrivals.
    //    (Endpoints survive restructuring, so the mapping is total.)
    let input_placement = place(&input_netlist, &lib, design.num_macros, &PlaceConfig::default());
    let input_graph = TimingGraph::build(&input_netlist, &lib);
    let targets: Vec<f32> = input_graph
        .endpoints()
        .iter()
        .map(|&v| signoff.arrival(input_graph.pin_of(v)).expect("endpoint survives"))
        .collect();
    let cfg = ModelConfig::small();
    let prep = PreparedDesign::prepare(
        &input_netlist,
        &lib,
        &input_placement,
        &input_graph,
        &cfg,
        targets.clone(),
    );
    let mut model = TimingModel::new(cfg);
    println!("training {} parameters ...", model.num_parameters());
    model.train(std::slice::from_ref(&prep), &TrainConfig { epochs: 40, ..TrainConfig::default() });

    // 6. Predict and score.
    let pred = model.predict(&prep);
    println!(
        "endpoint arrival prediction R² = {:.4} over {} endpoints",
        r2_score(&pred, &targets),
        targets.len()
    );
}
