//! Token-stream rule matchers.
//!
//! Every rule is a deliberately simple, documented heuristic over the token
//! stream: no type information exists without `syn` + a type checker, so
//! the matchers trade completeness for zero false negatives on the patterns
//! this workspace actually uses (tracked variable names for D001, literal
//! adjacency for D003, chain scanning for D004). False positives are
//! handled by inline suppressions with mandatory reasons.

use crate::diag::{Finding, Rule};
use crate::lexer::{Comment, Lexed, Token, TokenKind};

/// What kind of source a file is; decides which rules apply.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FileKind {
    /// Library code: every rule applies.
    Lib,
    /// Binary target (`src/bin/`, `main.rs`): R001/R002/D002 exempt.
    Bin,
    /// `examples/`: R001/R002/D002 exempt.
    Example,
    /// Integration tests (`tests/`): R001/R002/D002 exempt.
    Test,
    /// `benches/` or the `bench` crate: R001/R002/D002 exempt (timing is
    /// the point of a benchmark).
    Bench,
}

/// Per-file lint context.
#[derive(Clone, Debug)]
pub struct FileContext {
    /// Repo-relative path, forward slashes (used in diagnostics).
    pub path: String,
    /// Owning crate directory name (`sta`, `nn`, …).
    pub crate_name: String,
    /// File classification.
    pub kind: FileKind,
    /// `true` when `crate_name` is in the determinism-critical set.
    pub determinism_critical: bool,
}

/// Iterator adaptors whose order reflects hash order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Rayon entry points that start a parallel chain.
const PAR_CHAIN_STARTS: &[&str] =
    &["par_iter", "par_iter_mut", "into_par_iter", "par_bridge", "par_chunks", "par_windows"];

/// Runs every applicable rule over one lexed file.
pub fn check_file(lexed: &Lexed, ctx: &FileContext, source: &str) -> Vec<Finding> {
    let toks = &lexed.tokens;
    let lines: Vec<&str> = source.lines().collect();
    let depth = cumulative_depth(toks);
    let test_spans = test_spans(toks);
    let lib_code = |line: u32| -> bool {
        ctx.kind == FileKind::Lib && !test_spans.iter().any(|&(s, e)| line >= s && line <= e)
    };

    let mut findings = Vec::new();
    let mut push = |rule: Rule, t: &Token, message: String| {
        let excerpt = lines.get(t.line as usize - 1).map(|s| (*s).to_owned()).unwrap_or_default();
        findings.push(Finding {
            rule,
            file: ctx.path.clone(),
            line: t.line,
            col: t.col,
            message,
            excerpt,
        });
    };

    if ctx.determinism_critical {
        d001(toks, &mut push);
    }
    if ctx.kind == FileKind::Lib {
        d002(toks, &mut push);
    }
    d003(toks, &mut push);
    d004(toks, &depth, &mut push);
    for i in 0..toks.len() {
        // R001: `.unwrap()` / `.expect(` outside bins, examples, and tests.
        if toks[i].is_punct(".") && lib_code(toks[i].line) {
            if let Some(m) = toks.get(i + 1) {
                let call = toks.get(i + 2).is_some_and(|t| t.is_punct("("));
                if call && (m.is_ident("unwrap") || m.is_ident("expect")) {
                    push(
                        Rule::R001,
                        m,
                        format!("`{}` can panic; library code must return errors", m.text),
                    );
                }
            }
        }
        // R002: panic-family macros in the same contexts.
        if toks[i].kind == TokenKind::Ident
            && matches!(toks[i].text.as_str(), "panic" | "todo" | "unimplemented")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
            && lib_code(toks[i].line)
        {
            push(Rule::R002, &toks[i], format!("`{}!` aborts at runtime", toks[i].text));
        }
        // U001: `unsafe` needs an adjacent `// SAFETY:` comment.
        if toks[i].is_ident("unsafe") && !has_safety_comment(&lexed.comments, toks[i].line) {
            push(Rule::U001, &toks[i], "`unsafe` without a `// SAFETY:` comment".to_owned());
        }
    }
    findings
}

/// D001 — iteration over `HashMap`/`HashSet` in determinism-critical
/// crates. Tracks names declared with a hash-map type in this file (let
/// bindings, struct fields, fn params) and flags order-sensitive iteration
/// through them.
fn d001(toks: &[Token], push: &mut impl FnMut(Rule, &Token, String)) {
    let names = hash_typed_names(toks);
    if names.is_empty() {
        return;
    }
    for i in 0..toks.len() {
        let t = &toks[i];
        // `name.iter()` / `name.keys()` / … — also matches `self.name.iter()`.
        if t.kind == TokenKind::Ident && names.contains(&t.text) {
            if let (Some(dot), Some(m), Some(paren)) =
                (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3))
            {
                if dot.is_punct(".")
                    && paren.is_punct("(")
                    && HASH_ITER_METHODS.iter().any(|h| m.is_ident(h))
                {
                    push(
                        Rule::D001,
                        m,
                        format!(
                            "`{}` is a HashMap/HashSet; `.{}()` visits hash order",
                            t.text, m.text
                        ),
                    );
                }
            }
        }
        // `for pat in [&[mut]] path.to.name {` — flag when the iterated
        // expression's final identifier is hash-typed.
        if t.is_ident("for") {
            if let Some((expr_start, expr_end)) = for_in_expr(toks, i) {
                let expr = &toks[expr_start..expr_end];
                let last_ident = expr.iter().rev().find(|t| t.kind == TokenKind::Ident);
                let has_call = expr.iter().any(|t| t.is_punct("("));
                if let Some(last) = last_ident {
                    if !has_call
                        && expr.last().is_some_and(|t| t.kind == TokenKind::Ident)
                        && names.contains(&last.text)
                    {
                        push(
                            Rule::D001,
                            last,
                            format!("`for … in {}` visits hash order", last.text),
                        );
                    }
                }
            }
        }
    }
}

/// Collects identifiers declared with a `HashMap`/`HashSet` type in this
/// file: `name: [&][std::collections::]HashMap<…>` (fields, params, typed
/// lets) and `let [mut] name = HashMap::new()/with_capacity()/from(…)`.
fn hash_typed_names(toks: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            // Walk left over path/reference noise to the `name :` or
            // `name = ` introducer.
            let mut j = i;
            while j > 0
                && (toks[j - 1].is_punct("::")
                    || toks[j - 1].is_ident("std")
                    || toks[j - 1].is_ident("collections")
                    || toks[j - 1].is_punct("&")
                    || toks[j - 1].kind == TokenKind::Lifetime
                    || toks[j - 1].is_ident("mut"))
            {
                j -= 1;
            }
            if j >= 2 && toks[j - 1].is_punct(":") && toks[j - 2].kind == TokenKind::Ident {
                names.push(toks[j - 2].text.clone());
            } else if j >= 3 && toks[j - 1].is_punct("=") && toks[j - 2].kind == TokenKind::Ident {
                // `let [mut] name = HashMap::new()` — require a constructor
                // call right of the type to skip consts and reassignment of
                // unrelated values.
                let ctor = toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
                    && toks.get(i + 2).is_some_and(|t| {
                        t.is_ident("new") || t.is_ident("with_capacity") || t.is_ident("from")
                    });
                let mut k = j - 2;
                while k > 0 && toks[k - 1].is_ident("mut") {
                    k -= 1;
                }
                if ctor && k >= 1 && toks[k - 1].is_ident("let") {
                    names.push(toks[j - 2].text.clone());
                }
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// For a `for` at `toks[i]`, returns the token range of the iterated
/// expression (exclusive of the loop body `{`).
fn for_in_expr(toks: &[Token], i: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut j = i + 1;
    // Find the `in` at pattern depth 0.
    loop {
        let t = toks.get(j)?;
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "in" if depth == 0 && t.kind == TokenKind::Ident => break,
            "{" | ";" => return None,
            _ => {}
        }
        j += 1;
    }
    let start = j + 1;
    let mut k = start;
    let mut d = 0i32;
    loop {
        let t = toks.get(k)?;
        match t.text.as_str() {
            "(" | "[" => d += 1,
            ")" | "]" => d -= 1,
            "{" if d == 0 => return Some((start, k)),
            ";" => return None,
            _ => {}
        }
        k += 1;
    }
}

/// D002 — ambient entropy: `thread_rng()`, `SystemTime::now`, and
/// `Instant::now` in library code.
fn d002(toks: &[Token], push: &mut impl FnMut(Rule, &Token, String)) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.is_ident("thread_rng") && toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            push(Rule::D002, t, "`thread_rng()` draws unseeded entropy".to_owned());
        }
        if (t.is_ident("SystemTime") || t.is_ident("Instant"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks.get(i + 2).is_some_and(|n| n.is_ident("now"))
        {
            push(Rule::D002, t, format!("`{}::now()` reads the ambient clock", t.text));
        }
    }
}

/// D003 — exact float comparison: `==`/`!=` with a float literal or an
/// `f32::`/`f64::` constant as one operand. Operands that immediately call
/// a method (`1.0f32.to_bits()`) are skipped — those compare integers.
fn d003(toks: &[Token], push: &mut impl FnMut(Rule, &Token, String)) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let right_float = toks.get(i + 1).is_some_and(|n| n.kind == TokenKind::Float)
            && !toks.get(i + 2).is_some_and(|n| n.is_punct("."));
        let right_const =
            is_float_const(toks, i + 1) && !toks.get(i + 4).is_some_and(|n| n.is_punct("."));
        let left_float = i >= 1
            && toks[i - 1].kind == TokenKind::Float
            && !(i >= 2 && toks[i - 2].is_punct("."));
        let left_const = i >= 3
            && toks[i - 1].kind == TokenKind::Ident
            && toks[i - 2].is_punct("::")
            && (toks[i - 3].is_ident("f32") || toks[i - 3].is_ident("f64"))
            && is_float_const_name(&toks[i - 1].text);
        if right_float || right_const || left_float || left_const {
            push(
                Rule::D003,
                t,
                format!(
                    "float `{}` comparison is exact; epsilon or bit-pattern intent unclear",
                    t.text
                ),
            );
        }
    }
}

fn is_float_const(toks: &[Token], i: usize) -> bool {
    toks.get(i).is_some_and(|t| t.is_ident("f32") || t.is_ident("f64"))
        && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
        && toks
            .get(i + 2)
            .is_some_and(|t| t.kind == TokenKind::Ident && is_float_const_name(&t.text))
}

fn is_float_const_name(s: &str) -> bool {
    matches!(s, "INFINITY" | "NEG_INFINITY" | "NAN" | "EPSILON" | "MAX" | "MIN" | "MIN_POSITIVE")
}

/// D004 — `.sum()` / `.reduce()` / `.product()` at the same chain depth as
/// a rayon entry point: the reduction order then depends on work-stealing.
/// Reductions *inside* closures passed to the chain sit at a deeper paren
/// depth and are not flagged.
fn d004(toks: &[Token], depth: &[i32], push: &mut impl FnMut(Rule, &Token, String)) {
    for i in 0..toks.len() {
        if !(toks[i].kind == TokenKind::Ident
            && PAR_CHAIN_STARTS.iter().any(|p| toks[i].is_ident(p)))
        {
            continue;
        }
        let base = depth.get(i).copied().unwrap_or(0);
        let mut j = i + 1;
        while let Some(t) = toks.get(j) {
            let d = depth.get(j).copied().unwrap_or(0);
            if d < base || (t.is_punct(";") && d <= base) {
                break;
            }
            if d == base
                && t.is_punct(".")
                && toks.get(j + 1).is_some_and(|m| {
                    m.is_ident("sum") || m.is_ident("reduce") || m.is_ident("product")
                })
            {
                let m = &toks[j + 1];
                push(
                    Rule::D004,
                    m,
                    format!(
                        "`.{}()` after `{}` reduces in scheduling order; use the fixed-order tree sum",
                        m.text, toks[i].text
                    ),
                );
            }
            j += 1;
        }
    }
}

/// Paren/bracket/brace depth *before* each token.
fn cumulative_depth(toks: &[Token]) -> Vec<i32> {
    let mut out = Vec::with_capacity(toks.len());
    let mut d = 0i32;
    for t in toks {
        out.push(d);
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" | "{" => d += 1,
                ")" | "]" | "}" => d -= 1,
                _ => {}
            }
        }
    }
    out
}

/// Line spans of `#[cfg(test)]` / `#[test]` items (mod or fn), so R001 and
/// R002 skip test code embedded in library files (the parser reuses this to
/// keep test functions out of the call graph).
pub(crate) fn test_spans(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct("#") && toks.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            // Collect the attribute tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut is_test = false;
            while let Some(t) = toks.get(j) {
                match t.text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "test" if t.kind == TokenKind::Ident => is_test = true,
                    _ => {}
                }
                j += 1;
            }
            if is_test {
                // Skip any further attributes, then span the next braced item.
                let mut k = j + 1;
                while toks.get(k).is_some_and(|t| t.is_punct("#"))
                    && toks.get(k + 1).is_some_and(|t| t.is_punct("["))
                {
                    let mut d = 0i32;
                    while let Some(t) = toks.get(k) {
                        match t.text.as_str() {
                            "[" => d += 1,
                            "]" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    k += 1;
                }
                // Find the opening `{` of the item, then its matching `}`.
                while toks.get(k).is_some_and(|t| !t.is_punct("{") && !t.is_punct(";")) {
                    k += 1;
                }
                if toks.get(k).is_some_and(|t| t.is_punct("{")) {
                    let start_line = toks[i].line;
                    let mut d = 0i32;
                    while let Some(t) = toks.get(k) {
                        match t.text.as_str() {
                            "{" => d += 1,
                            "}" => {
                                d -= 1;
                                if d == 0 {
                                    spans.push((start_line, t.line));
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    i = k;
                }
            } else {
                i = j;
            }
        }
        i += 1;
    }
    spans
}

/// `true` if a `// SAFETY:` comment sits on the `unsafe` line or within the
/// three lines above it (allowing a short justification paragraph).
fn has_safety_comment(comments: &[Comment], line: u32) -> bool {
    comments
        .iter()
        .any(|c| c.text.trim_start().starts_with("SAFETY:") && c.line <= line && c.line + 3 >= line)
}
