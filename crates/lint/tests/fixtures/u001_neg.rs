// U001 negative: every unsafe carries a SAFETY justification.
pub fn reinterpret(x: u32) -> f32 {
    // SAFETY: u32 and f32 have identical size and alignment; any bit
    // pattern is a valid f32 (possibly NaN).
    unsafe { std::mem::transmute(x) }
}

pub fn first_byte(v: &[u8]) -> u8 {
    // SAFETY: caller guarantees v is non-empty (checked by the assert).
    assert!(!v.is_empty());
    unsafe { *v.get_unchecked(0) }
}
