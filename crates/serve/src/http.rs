//! A hand-rolled, incremental HTTP/1.1 request parser and response
//! encoder — zero dependencies, in the style of `crates/lint`'s lexer.
//!
//! The parser is **incremental**: the connection loop appends whatever
//! bytes the socket yields (one at a time under `ShortRead` fault
//! injection) and re-offers the buffer; [`parse_request`] answers
//! [`ParseStatus::Partial`] until a complete head and body are present.
//! Every size is budgeted up front by [`Limits`] — an attacker streaming
//! an endless header line is cut off at `max_head_bytes` with `431`, a
//! huge `Content-Length` is refused at `413` before any buffering.
//!
//! The fuzz suite (`tests/http_parser.rs`) drives this module with
//! arbitrary bytes and asserts it never panics, and that every valid
//! request it encodes round-trips through the parser.

use std::fmt;

/// Byte and count budgets for a single request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum bytes in the request line + headers (terminator included).
    pub max_head_bytes: usize,
    /// Maximum declared `Content-Length`.
    pub max_body_bytes: usize,
    /// Maximum number of header fields.
    pub max_headers: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self { max_head_bytes: 8 * 1024, max_body_bytes: 4 << 20, max_headers: 64 }
    }
}

/// A parsed request. Header names are lowercased at parse time so
/// lookups are case-insensitive without allocating per query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Request method, uppercase as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Path component of the target, up to `?`.
    pub path: String,
    /// Query component (after `?`), empty when absent.
    pub query: String,
    /// `true` for `HTTP/1.1`, `false` for `HTTP/1.0`.
    pub http11: bool,
    /// Header fields in arrival order: (lowercased name, trimmed value).
    pub headers: Vec<(String, String)>,
    /// Request body (exactly `Content-Length` bytes).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter (`?name=value&...`); percent
    /// escapes are not decoded (the protocol here never needs them).
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }

    /// `true` when the peer asked to close the connection after this
    /// exchange (`Connection: close`, or HTTP/1.0 without keep-alive).
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => !self.http11,
        }
    }
}

/// Outcome of offering a byte buffer to [`parse_request`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseStatus {
    /// A full request was parsed from the first `consumed` bytes; the
    /// remainder (if any) belongs to the next pipelined request.
    Complete {
        /// The parsed request.
        request: Box<Request>,
        /// Bytes of the buffer this request occupied.
        consumed: usize,
    },
    /// More bytes are needed; re-offer the buffer once it grows.
    Partial,
}

/// A malformed or over-budget request, with its HTTP answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Syntactically invalid request (`400`).
    Bad(&'static str),
    /// Head exceeded [`Limits::max_head_bytes`] (`431`).
    HeadTooLarge,
    /// Declared body exceeds [`Limits::max_body_bytes`] (`413`).
    BodyTooLarge,
    /// More than [`Limits::max_headers`] fields (`431`).
    TooManyHeaders,
    /// `Transfer-Encoding` is not implemented (`501`).
    TransferEncoding,
    /// Protocol version other than HTTP/1.0 or 1.1 (`505`).
    Version,
}

impl HttpError {
    /// The status code this error answers with.
    pub fn status(self) -> u16 {
        match self {
            Self::Bad(_) => 400,
            Self::HeadTooLarge | Self::TooManyHeaders => 431,
            Self::BodyTooLarge => 413,
            Self::TransferEncoding => 501,
            Self::Version => 505,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Bad(why) => write!(f, "bad request: {why}"),
            Self::HeadTooLarge => f.write_str("request head too large"),
            Self::BodyTooLarge => f.write_str("request body too large"),
            Self::TooManyHeaders => f.write_str("too many header fields"),
            Self::TransferEncoding => f.write_str("transfer-encoding not implemented"),
            Self::Version => f.write_str("http version not supported"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Locates the end of the request head: the index one past the blank
/// line. Accepts `\r\n\r\n` and the lenient bare `\n\n`.
fn head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            if i + 1 < buf.len() && buf[i + 1] == b'\n' {
                return Some(i + 2);
            }
            if i + 2 < buf.len() && buf[i + 1] == b'\r' && buf[i + 2] == b'\n' {
                return Some(i + 3);
            }
        }
        i += 1;
    }
    None
}

/// Incrementally parses one request from the front of `buf`.
///
/// Returns [`ParseStatus::Partial`] while bytes are missing, an
/// [`HttpError`] the moment the prefix is provably invalid or over
/// budget, and [`ParseStatus::Complete`] with the consumed length once
/// head and body are fully present.
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<ParseStatus, HttpError> {
    let Some(head_len) = head_end(buf) else {
        if buf.len() > limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge);
        }
        return Ok(ParseStatus::Partial);
    };
    if head_len > limits.max_head_bytes {
        return Err(HttpError::HeadTooLarge);
    }
    let head =
        std::str::from_utf8(&buf[..head_len]).map_err(|_| HttpError::Bad("head is not utf-8"))?;

    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let method = parts.next().ok_or(HttpError::Bad("empty request line"))?;
    let target = parts.next().ok_or(HttpError::Bad("missing request target"))?;
    let version = parts.next().ok_or(HttpError::Bad("missing http version"))?;
    if parts.next().is_some() {
        return Err(HttpError::Bad("extra tokens in request line"));
    }
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::Bad("method must be uppercase ascii"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::Version),
    };
    if !target.starts_with('/') {
        return Err(HttpError::Bad("target must be origin-form"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };

    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooManyHeaders);
        }
        let (name, value) = line.split_once(':').ok_or(HttpError::Bad("header without colon"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Bad("invalid header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
    }

    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(HttpError::TransferEncoding);
    }
    let body_len = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v.parse::<usize>().map_err(|_| HttpError::Bad("bad content-length"))?,
        None => 0,
    };
    if body_len > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }
    let total = head_len + body_len;
    if buf.len() < total {
        return Ok(ParseStatus::Partial);
    }

    Ok(ParseStatus::Complete {
        request: Box::new(Request {
            method: method.to_owned(),
            path: path.to_owned(),
            query: query.to_owned(),
            http11,
            headers,
            body: buf[head_len..total].to_vec(),
        }),
        consumed: total,
    })
}

/// The reason phrase for the status codes this daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

/// An HTTP response under construction.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers beyond `Content-Length`/`Content-Type`/`Connection`.
    pub headers: Vec<(&'static str, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    content_type: &'static str,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type: "text/plain; charset=utf-8",
        }
    }

    /// An `application/json` response (body must already be JSON).
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: body.into().into_bytes(),
            content_type: "application/json",
        }
    }

    /// Adds a header field.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// Serializes the response. `keep_alive: false` adds
    /// `Connection: close` so well-behaved peers stop reusing the socket.
    pub fn encode(&self, keep_alive: bool) -> Vec<u8> {
        let mut head = String::with_capacity(128);
        head.push_str("HTTP/1.1 ");
        head.push_str(&self.status.to_string());
        head.push(' ');
        head.push_str(reason(self.status));
        head.push_str("\r\nContent-Type: ");
        head.push_str(self.content_type);
        head.push_str("\r\nContent-Length: ");
        head.push_str(&self.body.len().to_string());
        head.push_str("\r\n");
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        if !keep_alive {
            head.push_str("Connection: close\r\n");
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(buf: &[u8]) -> (Request, usize) {
        match parse_request(buf, &Limits::default()).expect("parse") {
            ParseStatus::Complete { request, consumed } => (*request, consumed),
            ParseStatus::Partial => panic!("unexpected partial"),
        }
    }

    #[test]
    fn parses_a_minimal_get() {
        let (req, consumed) = complete(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.query, "");
        assert!(req.http11);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"), "lookup is case-insensitive");
        assert!(!req.wants_close());
        assert_eq!(consumed, 34);
    }

    #[test]
    fn parses_body_and_query_and_pipelining() {
        let raw = b"POST /predict?design=a&k=v HTTP/1.1\r\nContent-Length: 4\r\n\r\nbodyGET /next";
        let (req, consumed) = complete(raw);
        assert_eq!(req.body, b"body");
        assert_eq!(req.query_param("design"), Some("a"));
        assert_eq!(req.query_param("k"), Some("v"));
        assert_eq!(req.query_param("missing"), None);
        assert_eq!(&raw[consumed..], b"GET /next", "pipelined remainder untouched");
    }

    #[test]
    fn incremental_offers_stay_partial_until_whole() {
        let raw: &[u8] = b"POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc";
        for cut in 0..raw.len() {
            let status = parse_request(&raw[..cut], &Limits::default()).expect("valid prefix");
            assert_eq!(status, ParseStatus::Partial, "cut at {cut}");
        }
        let (req, _) = complete(raw);
        assert_eq!(req.body, b"abc");
    }

    #[test]
    fn budgets_are_enforced() {
        let limits = Limits { max_head_bytes: 64, max_body_bytes: 16, max_headers: 2 };
        let long_head = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(100));
        assert_eq!(parse_request(long_head.as_bytes(), &limits), Err(HttpError::HeadTooLarge));
        // Over-budget heads are rejected even before the terminator shows up.
        let endless = vec![b'a'; 100];
        assert_eq!(parse_request(&endless, &limits), Err(HttpError::HeadTooLarge));
        let big_body = b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n";
        assert_eq!(parse_request(big_body, &limits), Err(HttpError::BodyTooLarge));
        let many = b"GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n";
        assert_eq!(parse_request(many, &limits), Err(HttpError::TooManyHeaders));
    }

    #[test]
    fn rejects_malformed_requests_with_typed_errors() {
        let l = Limits::default();
        assert_eq!(parse_request(b"GET / HTTP/2.0\r\n\r\n", &l), Err(HttpError::Version));
        assert_eq!(
            parse_request(b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", &l),
            Err(HttpError::TransferEncoding)
        );
        for bad in [
            &b"get / HTTP/1.1\r\n\r\n"[..],
            b"GET http://x/ HTTP/1.1\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon\r\n\r\n",
            b"GET / HTTP/1.1\r\nContent-Length: two\r\n\r\n",
            b"\xff\xfe / HTTP/1.1\r\n\r\n",
        ] {
            let got = parse_request(bad, &l);
            assert!(matches!(got, Err(HttpError::Bad(_))), "{:?} -> {:?}", bad, got);
        }
    }

    #[test]
    fn connection_semantics() {
        let (req, _) = complete(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(req.wants_close());
        let (req, _) = complete(b"GET / HTTP/1.0\r\n\r\n");
        assert!(req.wants_close(), "1.0 defaults to close");
        let (req, _) = complete(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(!req.wants_close());
    }

    #[test]
    fn response_encodes_with_length_and_close() {
        let resp = Response::text(503, "busy").with_header("Retry-After", "1");
        let bytes = resp.encode(false);
        let text = String::from_utf8(bytes).expect("ascii");
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Content-Length: 4\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nbusy"));
    }
}
