// D003 negative: epsilon comparisons and bit-pattern checks.
pub fn is_zero(x: f32) -> bool {
    // Sign-insensitive bit test: matches +0.0 and -0.0 exactly.
    x.to_bits() << 1 == 0
}

pub fn near_one(x: f32) -> bool {
    (x - 1.0).abs() < 1e-6
}

pub fn is_exactly_one(x: f32) -> bool {
    x.to_bits() == 1.0f32.to_bits()
}

pub fn ordering_is_fine(x: f32) -> bool {
    x > 0.0 && x < 1.0
}
