//! RC trees and Elmore delay.
//!
//! The classic first-moment delay model of Rubinstein–Penfield–Horowitz
//! (the paper's reference \[1\]): for a tree of resistive segments with
//! distributed capacitance, the delay from the root to node *i* is
//!
//! ```text
//! t_i = Σ_{e ∈ path(root, i)} R_e · C_downstream(e)
//! ```
//!
//! where `C_downstream(e)` is all capacitance at or below the far end of
//! `e`, plus half of `e`'s own wire capacitance (π-model).

/// An RC tree rooted at node 0.
///
/// Node 0 is the driver; every other node has exactly one parent edge.
#[derive(Clone, Debug, Default)]
pub struct RcTree {
    /// `parent[i]` for node `i > 0`; `parent[0]` is unused (root).
    parent: Vec<usize>,
    /// Resistance of the edge into node `i` from its parent, kΩ.
    edge_res: Vec<f32>,
    /// Wire capacitance of the edge into node `i`, fF.
    edge_cap: Vec<f32>,
    /// Lumped load (pin) capacitance at node `i`, fF.
    node_cap: Vec<f32>,
}

impl RcTree {
    /// Creates a tree with `n` nodes and no edges yet.
    pub fn with_nodes(n: usize) -> Self {
        Self {
            parent: vec![usize::MAX; n],
            edge_res: vec![0.0; n],
            edge_cap: vec![0.0; n],
            node_cap: vec![0.0; n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Sets the parent edge of node `child`.
    ///
    /// # Panics
    ///
    /// Panics if `child` is 0 (the root has no parent) or out of range.
    pub fn set_edge(&mut self, parent: usize, child: usize, res_kohm: f32, cap_ff: f32) {
        assert!(child != 0, "root has no parent edge");
        assert!(child < self.parent.len() && parent < self.parent.len());
        self.parent[child] = parent;
        self.edge_res[child] = res_kohm;
        self.edge_cap[child] = cap_ff;
    }

    /// Adds lumped (pin) capacitance at a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn add_node_cap(&mut self, node: usize, cap_ff: f32) {
        self.node_cap[node] += cap_ff;
    }

    /// Total capacitance seen from the root (wire + pins), fF. This is the
    /// load that enters the driving cell's delay.
    pub fn total_cap(&self) -> f32 {
        self.edge_cap.iter().sum::<f32>() + self.node_cap.iter().sum::<f32>()
    }
}

/// Computes the Elmore delay in ps from the root to every node.
///
/// With resistances in kΩ and capacitances in fF, the product is directly
/// in picoseconds.
///
/// # Panics
///
/// Panics if a non-root node has no parent edge set.
pub fn elmore_delays(tree: &RcTree) -> Vec<f32> {
    let n = tree.len();
    if n == 0 {
        return Vec::new();
    }
    // Downstream capacitance per node: node cap + half of own edge cap +
    // children contributions (their full subtree + their full edge cap).
    // Process children before parents; nodes are in arbitrary order so we
    // compute an ordering by repeatedly following parents (tree depth).
    let mut order: Vec<usize> = (0..n).collect();
    let mut depth = vec![0u32; n];
    for (i, di) in depth.iter_mut().enumerate().skip(1) {
        let mut d = 0;
        let mut v = i;
        while v != 0 {
            assert!(tree.parent[v] != usize::MAX, "node {v} has no parent edge");
            v = tree.parent[v];
            d += 1;
            assert!(d as usize <= n, "parent cycle in RC tree");
        }
        *di = d;
    }
    order.sort_unstable_by_key(|&i| std::cmp::Reverse(depth[i]));

    // subtree_cap[i]: all cap at or below i, including i's node cap, all of
    // i's children's edge caps, and half of i's own edge cap (the far half
    // of the π-model).
    let mut subtree = tree.node_cap.clone();
    for &i in &order {
        if i == 0 {
            continue;
        }
        subtree[i] += tree.edge_cap[i] * 0.5;
        let p = tree.parent[i];
        subtree[p] += subtree[i] + tree.edge_cap[i] * 0.5;
    }

    // delay[i] = delay[parent] + R_edge(i) * (subtree cap below the edge).
    let mut delay = vec![0.0f32; n];
    let mut by_depth: Vec<usize> = (0..n).collect();
    by_depth.sort_unstable_by_key(|&i| depth[i]);
    for &i in &by_depth {
        if i == 0 {
            continue;
        }
        let p = tree.parent[i];
        delay[i] = delay[p] + tree.edge_res[i] * subtree[i];
    }
    delay
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_segment_matches_hand_calculation() {
        // Root --(R=2kΩ, Cw=4fF)--> sink with 1 fF pin cap.
        // Elmore = R * (Cw/2 + Cpin) = 2 * (2 + 1) = 6 ps.
        let mut t = RcTree::with_nodes(2);
        t.set_edge(0, 1, 2.0, 4.0);
        t.add_node_cap(1, 1.0);
        let d = elmore_delays(&t);
        assert_eq!(d[0], 0.0);
        assert!((d[1] - 6.0).abs() < 1e-5);
        assert!((t.total_cap() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn chain_accumulates() {
        // 0 -(1k,2f)- 1 -(1k,2f)- 2, pin caps 1f at each of 1 and 2.
        // subtree(2) = 1 + 1 = 2 ; delay(2 edge) part...
        // subtree(1) = 1 + 1 + (2 + 1 + 1) = wait, compute:
        //  node2: cap 1 + half edge 1 = 2 ; contributes to 1: 2 + 1 = 3
        //  node1: cap 1 + half edge 1 + 3 = 5
        //  delay1 = 1k * 5f = 5 ps ; delay2 = 5 + 1k * 2f = 7 ps
        let mut t = RcTree::with_nodes(3);
        t.set_edge(0, 1, 1.0, 2.0);
        t.set_edge(1, 2, 1.0, 2.0);
        t.add_node_cap(1, 1.0);
        t.add_node_cap(2, 1.0);
        let d = elmore_delays(&t);
        assert!((d[1] - 5.0).abs() < 1e-5, "{d:?}");
        assert!((d[2] - 7.0).abs() < 1e-5, "{d:?}");
    }

    #[test]
    fn branch_delays_are_independent_downstream() {
        // Star: two sinks off the root; each only sees its own RC.
        let mut t = RcTree::with_nodes(3);
        t.set_edge(0, 1, 1.0, 2.0);
        t.set_edge(0, 2, 3.0, 2.0);
        t.add_node_cap(1, 1.0);
        t.add_node_cap(2, 1.0);
        let d = elmore_delays(&t);
        assert!((d[1] - 1.0 * 2.0).abs() < 1e-5);
        assert!((d[2] - 3.0 * 2.0).abs() < 1e-5);
    }

    #[test]
    fn monotonic_along_paths() {
        let mut t = RcTree::with_nodes(5);
        t.set_edge(0, 1, 0.5, 1.0);
        t.set_edge(1, 2, 0.5, 1.0);
        t.set_edge(1, 3, 0.2, 0.5);
        t.set_edge(3, 4, 0.9, 2.0);
        for i in 1..5 {
            t.add_node_cap(i, 0.8);
        }
        let d = elmore_delays(&t);
        assert!(d[2] > d[1]);
        assert!(d[3] > d[1]);
        assert!(d[4] > d[3]);
    }

    #[test]
    fn empty_tree() {
        assert!(elmore_delays(&RcTree::default()).is_empty());
    }

    #[test]
    #[should_panic(expected = "no parent edge")]
    fn missing_parent_panics() {
        let t = RcTree::with_nodes(2);
        let _ = elmore_delays(&t);
    }
}
