//! The customized GNN of Section IV: levelized message passing with
//! distinct aggregators for cell edges and net edges (Equation 3).

use rand::Rng;

use rtt_features::{NodeFeatures, CELL_FEATURE_DIM, NET_FEATURE_DIM};
use rtt_netlist::{EdgeKind, NodeKind, TimingGraph};
use rtt_nn::{Exec, Mlp, ParamStore, Tensor};

use crate::{Aggregation, ModelConfig};

/// Readout scale for residual embeddings: they accumulate over up to
/// hundreds of topological levels, so readout heads should rescale them
/// into an O(1) regime.
pub const READOUT_SCALE: f32 = 0.05;

/// A static execution plan for one design: who sits at which topological
/// level, where each node's messages come from, and how to reassemble the
/// per-level matrices. Building it once per design and reusing it across
/// epochs is what makes CPU training viable.
#[derive(Clone, Debug)]
pub struct GnnSchedule {
    levels: Vec<LevelPlan>,
    endpoint_locs: Vec<(u32, u32)>,
    node_loc: Vec<(u32, u32)>,
}

#[derive(Clone, Debug, Default)]
struct LevelPlan {
    cell_nodes: Vec<u32>,
    net_nodes: Vec<u32>,
    source_nodes: Vec<u32>,
    /// `(level, row)` of each fanin message of the cell group, flattened.
    cell_gather: Vec<(u32, u32)>,
    /// Segment id (index into `cell_nodes`) of each gathered message.
    cell_seg: Vec<u32>,
    /// Fanin count per cell node (for mean aggregation).
    cell_fanin: Vec<f32>,
    /// `(level, row)` of the single driver message of each net node.
    net_gather: Vec<(u32, u32)>,
    /// Restores level order from the `[cells, nets, sources]` concat.
    perm: Vec<u32>,
}

impl GnnSchedule {
    /// Plans the levelized propagation for `graph`.
    pub fn build(graph: &TimingGraph) -> Self {
        let mut node_loc = vec![(0u32, 0u32); graph.num_nodes()];
        let mut levels = Vec::with_capacity(graph.max_level() as usize + 1);

        for l in 0..=graph.max_level() {
            let nodes = graph.nodes_at_level(l);
            let mut plan = LevelPlan::default();
            // Partition the level into groups.
            for &v in nodes {
                match graph.node_kind(v) {
                    NodeKind::CellOut => plan.cell_nodes.push(v),
                    NodeKind::NetSink => plan.net_nodes.push(v),
                    NodeKind::Source => plan.source_nodes.push(v),
                }
            }
            // Record each node's (level, row-in-level-order) location.
            for (row, &v) in nodes.iter().enumerate() {
                node_loc[v as usize] = (l, row as u32);
            }
            // Message gathers reference already-computed levels.
            for (seg, &v) in plan.cell_nodes.iter().enumerate() {
                let mut fanin = 0u32;
                for e in graph.fanin(v) {
                    debug_assert_eq!(e.kind, EdgeKind::Cell);
                    plan.cell_gather.push(node_loc[e.from as usize]);
                    plan.cell_seg.push(seg as u32);
                    fanin += 1;
                }
                plan.cell_fanin.push(f32::from(u16::try_from(fanin).expect("fanin fits")));
            }
            for &v in &plan.net_nodes {
                let e = graph.fanin(v).next().expect("net node has a driver");
                debug_assert_eq!(e.kind, EdgeKind::Net);
                plan.net_gather.push(node_loc[e.from as usize]);
            }
            // Permutation: concat order position of each level-order node.
            let mut concat_pos = vec![0u32; nodes.len()];
            let mut cursor = 0u32;
            for group in [&plan.cell_nodes, &plan.net_nodes, &plan.source_nodes] {
                for &v in group {
                    let (_, row) = node_loc[v as usize];
                    concat_pos[row as usize] = cursor;
                    cursor += 1;
                }
            }
            plan.perm = concat_pos;
            levels.push(plan);
        }

        let endpoint_locs = graph.endpoints().iter().map(|&v| node_loc[v as usize]).collect();
        Self { levels, endpoint_locs, node_loc }
    }

    /// Number of topological levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Number of endpoints the schedule will embed.
    pub fn num_endpoints(&self) -> usize {
        self.endpoint_locs.len()
    }

    /// `(level, row)` location of a graph node in the level matrices —
    /// usable as an [`Exec::gather_multi`] index over the output of
    /// [`NetlistGnn::forward_levels`].
    pub fn loc_of(&self, node: u32) -> (u32, u32) {
        self.node_loc[node as usize]
    }

    /// Locations of several nodes (convenience for batched gathers).
    pub fn locs_of(&self, nodes: &[u32]) -> Vec<(u32, u32)> {
        nodes.iter().map(|&v| self.loc_of(v)).collect()
    }
}

/// Per-level feature tensors consumed by the GNN forward pass, aligned
/// with a [`GnnSchedule`]'s groups.
#[derive(Clone, Debug, Default)]
pub struct LevelFeats {
    /// Cell-group features, one `[n_cells, CELL_FEATURE_DIM]` per level.
    pub cell: Vec<Option<Tensor>>,
    /// Net-group features, `[n_nets, NET_FEATURE_DIM]` per level.
    pub net: Vec<Option<Tensor>>,
    /// Source-group features, `[n_src, CELL_FEATURE_DIM]` per level.
    pub source: Vec<Option<Tensor>>,
}

impl LevelFeats {
    /// Assembles group feature matrices from extracted node features.
    pub fn assemble(schedule: &GnnSchedule, features: &NodeFeatures) -> Self {
        let mut out = Self::default();
        for plan in &schedule.levels {
            out.cell
                .push(group_matrix(&plan.cell_nodes, CELL_FEATURE_DIM, |v| features.cell_row(v)));
            out.net.push(group_matrix(&plan.net_nodes, NET_FEATURE_DIM, |v| features.net_row(v)));
            out.source
                .push(group_matrix(&plan.source_nodes, CELL_FEATURE_DIM, |v| features.cell_row(v)));
        }
        out
    }
}

fn group_matrix<'f>(nodes: &[u32], dim: usize, row: impl Fn(u32) -> &'f [f32]) -> Option<Tensor> {
    if nodes.is_empty() {
        return None;
    }
    let mut data = Vec::with_capacity(nodes.len() * dim);
    for &v in nodes {
        data.extend_from_slice(row(v));
    }
    Some(Tensor::from_vec(&[nodes.len(), dim], data))
}

/// The three MLPs of Equation 3 and the levelized forward pass.
#[derive(Clone, Debug)]
pub struct NetlistGnn {
    f_c1: Mlp,
    f_c2: Mlp,
    f_n: Mlp,
    residual: bool,
}

impl NetlistGnn {
    /// Registers the GNN parameters (`f_c1`, `f_c2`, `f_n` — 3-layer MLPs
    /// as in the paper).
    pub fn new<R: Rng>(store: &mut ParamStore, rng: &mut R, config: &ModelConfig) -> Self {
        let d = config.embed_dim;
        let h = config.gnn_hidden;
        if config.residual {
            // Small-increment initialization: fanin cones reach hundreds of
            // levels, so per-level increments must start near zero.
            Self {
                f_c1: Mlp::new_scaled(store, rng, &[d, h, d], 0.1),
                f_c2: Mlp::new_scaled(store, rng, &[CELL_FEATURE_DIM, h, d], 0.1),
                f_n: Mlp::new_scaled(store, rng, &[NET_FEATURE_DIM, h, d], 0.1),
                residual: true,
            }
        } else {
            Self {
                f_c1: Mlp::new(store, rng, &[d, h, d]),
                f_c2: Mlp::new(store, rng, &[CELL_FEATURE_DIM, h, d]),
                f_n: Mlp::new(store, rng, &[NET_FEATURE_DIM, h, d]),
                residual: false,
            }
        }
    }

    /// Runs levelized propagation and returns the endpoint embedding
    /// matrix `[num_endpoints, embed_dim]` on any execution backend
    /// (`&Tape` for training, `&InferCtx` for tape-free serving).
    ///
    /// # Panics
    ///
    /// Panics if `feats` does not match `schedule` (group shape mismatch).
    pub fn forward<E: Exec>(
        &self,
        ex: E,
        store: &ParamStore,
        schedule: &GnnSchedule,
        feats: &LevelFeats,
        aggregation: Aggregation,
    ) -> E::Value {
        rtt_obs::span!("core::gnn_forward");
        let level_vars = self.forward_levels(ex, store, schedule, feats, aggregation);
        ex.gather_multi(&level_vars, &schedule.endpoint_locs)
    }

    /// Like [`Self::forward`], but returns every per-level embedding matrix
    /// so callers can read out arbitrary node embeddings via
    /// [`GnnSchedule::loc_of`] (the end-to-end baseline predicts at all
    /// pins, not only endpoints).
    pub fn forward_levels<E: Exec>(
        &self,
        ex: E,
        store: &ParamStore,
        schedule: &GnnSchedule,
        feats: &LevelFeats,
        aggregation: Aggregation,
    ) -> Vec<E::Value> {
        let mut level_vars: Vec<E::Value> = Vec::with_capacity(schedule.levels.len());
        for (l, plan) in schedule.levels.iter().enumerate() {
            let mut groups: Vec<E::Value> = Vec::new();

            if !plan.cell_nodes.is_empty() {
                let msgs = ex.gather_multi(&level_vars, &plan.cell_gather);
                let agg = match aggregation {
                    Aggregation::Max => ex.segment_max(msgs, &plan.cell_seg, plan.cell_nodes.len()),
                    Aggregation::Mean => {
                        let sum = ex.segment_sum(msgs, &plan.cell_seg, plan.cell_nodes.len());
                        let inv: Vec<f32> =
                            plan.cell_fanin.iter().map(|&c| 1.0 / c.max(1.0)).collect();
                        ex.scale_rows(sum, &inv)
                    }
                };
                let feat = ex.constant(feats.cell[l].clone().expect("cell feats present"));
                let h =
                    if self.residual {
                        // Residual: accumulate a *bounded* non-negative
                        // increment on top of the worst fanin message,
                        // mirroring arrival-time propagation. The context into
                        // f_c1 is tanh-bounded: an increment proportional to
                        // the accumulated magnitude would grow exponentially
                        // over hundred-level cones.
                        let ctx = ex.tanh(agg);
                        let inc = ex.relu(ex.add(
                            self.f_c1.forward(ex, store, ctx),
                            self.f_c2.forward(ex, store, feat),
                        ));
                        ex.add(agg, inc)
                    } else {
                        // Literal Equation 3.
                        ex.relu(ex.add(
                            self.f_c1.forward(ex, store, agg),
                            self.f_c2.forward(ex, store, feat),
                        ))
                    };
                groups.push(h);
            }
            if !plan.net_nodes.is_empty() {
                let msg = ex.gather_multi(&level_vars, &plan.net_gather);
                let feat = ex.constant(feats.net[l].clone().expect("net feats present"));
                let inc = if self.residual {
                    ex.relu(self.f_n.forward(ex, store, feat))
                } else {
                    ex.relu(ex.add(msg, self.f_n.forward(ex, store, feat)))
                };
                let h = if self.residual { ex.add(msg, inc) } else { inc };
                groups.push(h);
            }
            if !plan.source_nodes.is_empty() {
                let feat = ex.constant(feats.source[l].clone().expect("source feats present"));
                let h = ex.relu(self.f_c2.forward(ex, store, feat));
                groups.push(h);
            }

            let concat = groups
                .into_iter()
                .reduce(|a, b| ex.concat_rows(a, b))
                .expect("every level has nodes");
            level_vars.push(ex.gather_rows(concat, &plan.perm));
        }
        level_vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rtt_circgen::{ripple_carry_adder, GenParams};
    use rtt_netlist::CellLibrary;
    use rtt_nn::Tape;
    use rtt_place::{place, PlaceConfig};

    fn world(cells: usize) -> (GnnSchedule, LevelFeats, usize) {
        let lib = CellLibrary::asap7_like();
        let nl = if cells == 0 {
            ripple_carry_adder(4, &lib)
        } else {
            GenParams::new("g", cells, 3).generate(&lib).netlist
        };
        let pl = place(&nl, &lib, 0, &PlaceConfig::default());
        let graph = TimingGraph::build(&nl, &lib);
        let schedule = GnnSchedule::build(&graph);
        let features = NodeFeatures::extract(&nl, &lib, &graph, &pl);
        let feats = LevelFeats::assemble(&schedule, &features);
        (schedule, feats, graph.endpoints().len())
    }

    #[test]
    fn schedule_covers_all_endpoints() {
        let (schedule, _, n_ep) = world(0);
        assert_eq!(schedule.num_endpoints(), n_ep);
        assert!(schedule.num_levels() > 3);
    }

    #[test]
    fn sources_only_at_level_zero() {
        let (schedule, _, _) = world(200);
        for (l, plan) in schedule.levels.iter().enumerate() {
            if l > 0 {
                assert!(plan.source_nodes.is_empty(), "source above level 0");
                assert_eq!(plan.cell_gather.is_empty(), plan.cell_nodes.is_empty());
            }
        }
        assert!(!schedule.levels[0].source_nodes.is_empty());
        assert!(schedule.levels[0].cell_nodes.is_empty());
    }

    #[test]
    fn gathers_reference_earlier_levels_only() {
        let (schedule, _, _) = world(200);
        for (l, plan) in schedule.levels.iter().enumerate() {
            for &(src_level, _) in plan.cell_gather.iter().chain(&plan.net_gather) {
                assert!((src_level as usize) < l, "forward reference at level {l}");
            }
        }
    }

    #[test]
    fn forward_produces_endpoint_matrix() {
        let (schedule, feats, n_ep) = world(150);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let cfg = ModelConfig::tiny();
        let gnn = NetlistGnn::new(&mut store, &mut rng, &cfg);
        let tape = Tape::new();
        let emb = gnn.forward(&tape, &store, &schedule, &feats, Aggregation::Max);
        let t = tape.value(emb);
        assert_eq!(t.shape(), &[n_ep, cfg.embed_dim]);
        assert!(t.data().iter().all(|v| v.is_finite()));
        // Embeddings must differ across endpoints (no collapse at init).
        let first = t.row(0).to_vec();
        assert!((1..n_ep).any(|r| t.row(r) != first.as_slice()));
    }

    #[test]
    fn mean_and_max_aggregation_differ() {
        let (schedule, feats, _) = world(120);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let cfg = ModelConfig::tiny();
        let gnn = NetlistGnn::new(&mut store, &mut rng, &cfg);
        let tape = Tape::new();
        let a = tape.value(gnn.forward(&tape, &store, &schedule, &feats, Aggregation::Max));
        let b = tape.value(gnn.forward(&tape, &store, &schedule, &feats, Aggregation::Mean));
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn gradients_flow_to_all_three_mlps() {
        let (schedule, feats, _) = world(100);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let cfg = ModelConfig::tiny();
        let gnn = NetlistGnn::new(&mut store, &mut rng, &cfg);
        let tape = Tape::new();
        let emb = gnn.forward(&tape, &store, &schedule, &feats, Aggregation::Max);
        let loss = emb.mul(emb).mean();
        let grads = tape.backward(loss);
        let mut with_grad = 0;
        for (id, _) in store.iter() {
            if grads.of(id).is_some_and(|g| g.norm() > 0.0) {
                with_grad += 1;
            }
        }
        // 3 MLPs × 2 layers × (w, b) = 12 parameter tensors.
        assert!(with_grad >= 10, "only {with_grad} params receive gradient");
    }
}
