//! Cross-crate invariants the paper's argument rests on.

use restructure_timing::flow::{run_design_flow, FlowConfig};
use restructure_timing::prelude::*;

#[test]
fn endpoints_survive_optimization_on_every_preset() {
    // The paper's central observation: "timing endpoints are never
    // replaced". Verify it across all ten designs at tiny scale.
    let lib = CellLibrary::asap7_like();
    let cfg = FlowConfig { scale: Scale::Tiny, ..FlowConfig::default() };
    for preset_name in restructure_timing::circgen::preset_names() {
        let params = preset(preset_name, Scale::Tiny).expect("known preset");
        let d = run_design_flow(&params, &lib, &cfg);
        for &v in d.input_graph.endpoints() {
            let pin = d.input_graph.pin_of(v);
            assert!(
                d.opt_netlist.pin(pin).is_alive(),
                "{preset_name}: endpoint pin {pin} was replaced"
            );
            assert!(
                d.signoff.arrival(pin).is_some(),
                "{preset_name}: endpoint pin {pin} lost its sign-off arrival"
            );
        }
    }
}

#[test]
fn optimized_netlists_remain_valid_dags() {
    let lib = CellLibrary::asap7_like();
    let cfg = FlowConfig { scale: Scale::Tiny, ..FlowConfig::default() };
    for name in ["jpeg", "or1200", "hwacha"] {
        let params = preset(name, Scale::Tiny).expect("known preset");
        let d = run_design_flow(&params, &lib, &cfg);
        d.opt_netlist.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        let g =
            TimingGraph::try_build(&d.opt_netlist, &lib).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(g.num_nodes() > 0);
    }
}

#[test]
fn optimization_never_degrades_signoff_wns() {
    let lib = CellLibrary::asap7_like();
    let cfg = FlowConfig { scale: Scale::Tiny, ..FlowConfig::default() };
    for name in ["rocket", "sha3", "steelcore"] {
        let params = preset(name, Scale::Tiny).expect("known preset");
        let d = run_design_flow(&params, &lib, &cfg);
        assert!(
            d.signoff.wns >= d.no_opt.wns - 1e-3,
            "{name}: optimizer degraded wns {} -> {}",
            d.no_opt.wns,
            d.signoff.wns
        );
    }
}

#[test]
fn replacement_fractions_are_plausible() {
    // Table I reports 28–50% net edges and 8–39% cell edges replaced; at
    // tiny scale we only require a nonzero, sane range across the suite.
    let lib = CellLibrary::asap7_like();
    let cfg = FlowConfig { scale: Scale::Tiny, ..FlowConfig::default() };
    let mut any_net = false;
    for name in restructure_timing::circgen::preset_names() {
        let params = preset(name, Scale::Tiny).expect("known preset");
        let d = run_design_flow(&params, &lib, &cfg);
        let nf = d.diff.net_replaced_fraction();
        let cf = d.diff.cell_replaced_fraction();
        assert!((0.0..=0.95).contains(&nf), "{name}: net replaced {nf}");
        assert!((0.0..=0.95).contains(&cf), "{name}: cell replaced {cf}");
        any_net |= nf > 0.0;
    }
    assert!(any_net, "no design was restructured at all");
}
