//! Regenerates **Fig. 6**: the endpoint-wise masking example — topological
//! levels, the longest path of an endpoint, and its critical-region mask
//! rendered as ASCII art.

use rtt_bench::Cli;
use rtt_circgen::preset;
use rtt_features::{endpoint_mask, longest_path};
use rtt_netlist::{CellLibrary, TimingGraph};
use rtt_place::{place, PlaceConfig};

fn main() {
    let cli = Cli::parse();
    let lib = CellLibrary::asap7_like();
    let params = preset("chacha", cli.scale).expect("known design");
    let design = params.generate(&lib);
    let pl = place(&design.netlist, &lib, 0, &PlaceConfig::default());
    let graph = TimingGraph::build(&design.netlist, &lib);

    // Pick the deepest endpoint — the most interesting critical region.
    let ep =
        *graph.endpoints().iter().max_by_key(|&&e| graph.level(e)).expect("design has endpoints");
    let path = longest_path(&graph, ep);
    let grid = 24;
    let mask = endpoint_mask(&design.netlist, &pl, &graph, &path, grid);

    let mut report = format!(
        "# Fig. 6 endpoint-wise masking (scale: {})\n\n\
         Endpoint `{}` at topological level {} of {}.\n\n\
         Longest path (node, level):\n\n```\n",
        cli.scale,
        design.netlist.pin(graph.pin_of(ep)).name,
        graph.level(ep),
        graph.max_level(),
    );
    for &v in &path {
        report.push_str(&format!(
            "  level {:>3}  {}\n",
            graph.level(v),
            design.netlist.pin(graph.pin_of(v)).name
        ));
    }
    report.push_str("```\n\nCritical-region mask (█ = inside R_e):\n\n```\n");
    for y in (0..grid).rev() {
        for x in 0..grid {
            report.push(if mask.at(x, y) > 0.0 { '█' } else { '·' });
        }
        report.push('\n');
    }
    report.push_str("```\n");
    cli.write_report("fig6", &report);
    cli.finish_trace();
}
