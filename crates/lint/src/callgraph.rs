//! Conservative cross-crate call graph + the reachability rules.
//!
//! Built from every [`ParsedFile`] in the workspace at once, so edges cross
//! crate boundaries (e.g. `TimingModel::predict_batch` in `core` →
//! `ops::segment_max_csr` in `nn`). Resolution is name + receiver-type
//! heuristics, biased *conservative*:
//!
//! * `Type::method` / free `func(...)` resolve exactly by name;
//! * `self.method(...)` resolves via the enclosing `impl` type;
//! * `self.field.method(...)` resolves via the struct-field type table;
//! * a method call whose receiver type is unknown **fans out to every
//!   workspace function of that name** — over-approximation, never a
//!   missed edge — unless the name is a common std method (`len`, `iter`,
//!   `clone`, …), in which case no workspace function plausibly matches
//!   and the call is opaque;
//! * calls to anything not defined in the workspace are opaque. This is
//!   the soundness boundary: panics *inside std/compat* are invisible,
//!   panics in workspace code are not.
//!
//! Rules on top of the graph:
//!
//! * **R003** — BFS from `// rtt-lint: entry` functions; any reachable
//!   panic site (unwrap/expect/panic-family macro/`[&k]` map index) is
//!   reported with its full call chain. `unreachable!` and the `assert!`
//!   family are deliberately exempt: asserting a statically-known
//!   invariant is the sanctioned way to hoist checks (see P002).
//! * **P001** — same BFS from `// rtt-lint: hot` functions over
//!   allocation sites.
//! * **P002** — local to each `hot` function: an indexed access in an
//!   innermost loop must be dominated by an `assert!`-family guard above
//!   the loop that mentions the indexed name.

use crate::diag::{Finding, Rule};
use crate::parse::{Callee, FnDef, ParsedFile};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Methods so common in std/core that an unknown-receiver call to them is
/// treated as opaque instead of fanning out to same-named workspace fns.
/// Workspace methods deliberately avoid these names where it matters.
const COMMON_METHODS: &[&str] = &[
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "get",
    "get_mut",
    "push",
    "pop",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "clone",
    "to_vec",
    "to_owned",
    "to_string",
    "as_str",
    "as_ref",
    "as_mut",
    "as_slice",
    "as_bytes",
    "unwrap",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "expect",
    "map",
    "and_then",
    "ok_or",
    "ok_or_else",
    "ok",
    "err",
    "filter",
    "filter_map",
    "flat_map",
    "fold",
    "sum",
    "product",
    "min",
    "max",
    "abs",
    "sqrt",
    "exp",
    "ln",
    "tanh",
    "powi",
    "powf",
    "floor",
    "ceil",
    "round",
    "to_bits",
    "from_bits",
    "collect",
    "enumerate",
    "zip",
    "rev",
    "chain",
    "take",
    "skip",
    "chunks",
    "chunks_exact",
    "chunks_mut",
    "chunks_exact_mut",
    "windows",
    "split_at",
    "split_at_mut",
    "first",
    "last",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "binary_search",
    "extend",
    "extend_from_slice",
    "resize",
    "resize_with",
    "reserve",
    "with_capacity",
    "fill",
    "copy_from_slice",
    "clone_from_slice",
    "swap",
    "drain",
    "clear",
    "truncate",
    "retain",
    "keys",
    "values",
    "values_mut",
    "entry",
    "or_insert",
    "or_insert_with",
    "or_default",
    "starts_with",
    "ends_with",
    "trim",
    "split",
    "lines",
    "chars",
    "parse",
    "join",
    "position",
    "find",
    "any",
    "all",
    "count",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "cmp",
    "partial_cmp",
    "total_cmp",
    "eq",
    "ne",
    "hash",
    "fmt",
    "borrow",
    "borrow_mut",
    "lock",
    "read",
    "write",
    "send",
    "recv",
    "next",
    "peek",
    "copied",
    "cloned",
    "step_by",
    "saturating_sub",
    "saturating_add",
    "checked_sub",
    "checked_add",
    "checked_mul",
    "wrapping_add",
    "is_finite",
    "is_nan",
    "is_infinite",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "take_while",
    "skip_while",
];

/// One node per parsed workspace function.
#[derive(Clone, Debug)]
struct Node {
    /// Index into `files` / the function's own def.
    file: usize,
    def: FnDef,
}

/// The workspace call graph.
pub struct CallGraph<'a> {
    files: &'a [ParsedFile],
    nodes: Vec<Node>,
    /// Outgoing edges per node (deduped, sorted).
    edges: Vec<Vec<usize>>,
}

impl<'a> CallGraph<'a> {
    /// Total number of resolved call edges (diagnostic stat).
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Number of `// rtt-lint: entry` roots.
    pub fn entry_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.def.entry).count()
    }

    /// Number of `// rtt-lint: hot` roots.
    pub fn hot_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.def.hot).count()
    }

    /// Links every function in `files` into one graph.
    pub fn build(files: &'a [ParsedFile]) -> CallGraph<'a> {
        let mut nodes = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            for def in &f.fns {
                nodes.push(Node { file: fi, def: def.clone() });
            }
        }

        // Name indices. BTreeMap keeps resolution order deterministic.
        let mut by_free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            by_name.entry(n.def.name.as_str()).or_default().push(i);
            match &n.def.self_ty {
                Some(ty) => {
                    by_method.entry((ty.as_str(), n.def.name.as_str())).or_default().push(i)
                }
                None => by_free.entry(n.def.name.as_str()).or_default().push(i),
            }
        }
        // `(struct, field) → field type` across the workspace.
        let mut field_ty: BTreeMap<(&str, &str), &str> = BTreeMap::new();
        for f in files {
            for td in &f.types {
                for (field, ty) in &td.fields {
                    field_ty.insert((td.name.as_str(), field.as_str()), ty.as_str());
                }
            }
        }

        let resolve_field = |self_ty: Option<&str>, path: &str| -> Option<String> {
            // `self.field` pseudo-receiver recorded by the parser.
            let field = path.strip_prefix("self.")?;
            let ty = self_ty?;
            field_ty.get(&(ty, field)).map(|t| (*t).to_owned())
        };

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (i, n) in nodes.iter().enumerate() {
            let mut out = BTreeSet::new();
            for call in &n.def.calls {
                match &call.callee {
                    Callee::Free(name) => {
                        if let Some(ids) = by_free.get(name.as_str()) {
                            out.extend(ids.iter().copied());
                        }
                    }
                    Callee::Path(q, name) => {
                        if let Some(ids) = by_method.get(&(q.as_str(), name.as_str())) {
                            out.extend(ids.iter().copied());
                        } else if let Some(ids) = by_free.get(name.as_str()) {
                            // `module::func(...)` — the qualifier is a module,
                            // not a type; match free functions by name.
                            out.extend(ids.iter().copied());
                        }
                    }
                    Callee::Method(recv, name) => {
                        let ty = match recv.as_deref() {
                            Some(p) if p.starts_with("self.") => {
                                resolve_field(n.def.self_ty.as_deref(), p)
                            }
                            Some(t) => Some(t.to_owned()),
                            None => None,
                        };
                        match ty {
                            Some(ty) => {
                                if let Some(ids) = by_method.get(&(ty.as_str(), name.as_str())) {
                                    out.extend(ids.iter().copied());
                                }
                                // Known receiver type with no workspace method
                                // of that name → std/compat method → opaque.
                            }
                            None => {
                                // Unknown receiver: conservative fan-out to
                                // every workspace *method* of that name,
                                // unless it's a ubiquitous std method.
                                if !COMMON_METHODS.contains(&name.as_str()) {
                                    if let Some(ids) = by_name.get(name.as_str()) {
                                        out.extend(
                                            ids.iter()
                                                .copied()
                                                .filter(|&j| nodes[j].def.self_ty.is_some()),
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
            out.remove(&i); // self-recursion adds nothing to reachability
            edges[i] = out.into_iter().collect();
        }
        CallGraph { files, nodes, edges }
    }

    /// Runs R003 + P001 + P002 and returns raw findings (unsuppressed).
    pub fn check(&self) -> Vec<Finding> {
        let mut findings = Vec::new();
        self.reachability(Rule::R003, |d| d.entry, |d| &d.panics, "can panic", &mut findings);
        self.reachability(Rule::P001, |d| d.hot, |d| &d.allocs, "allocates", &mut findings);
        self.bounds_checks(&mut findings);
        findings
    }

    /// Shared BFS for R003/P001: from every root, walk call edges; report
    /// each site of `sites(def)` in a reached function once, with the
    /// shortest root→function chain in the message.
    fn reachability(
        &self,
        rule: Rule,
        is_root: impl Fn(&FnDef) -> bool,
        sites: impl Fn(&FnDef) -> &[crate::parse::Site],
        verb: &str,
        findings: &mut Vec<Finding>,
    ) {
        // parent[i] = predecessor on the shortest path from any root.
        let n = self.nodes.len();
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut seen = vec![false; n];
        let mut queue = VecDeque::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if is_root(&node.def) {
                seen[i] = true;
                queue.push_back(i);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &j in &self.edges[i] {
                if !seen[j] {
                    seen[j] = true;
                    parent[j] = Some(i);
                    queue.push_back(j);
                }
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if !seen[i] {
                continue;
            }
            let site_list = sites(&node.def);
            if site_list.is_empty() {
                continue;
            }
            let chain = self.chain(i, &parent);
            for site in site_list {
                findings.push(Finding {
                    rule,
                    file: self.files[node.file].path.clone(),
                    line: site.line,
                    col: site.col,
                    message: format!("`{}` {verb} on the serving path: {chain}", site.what),
                    excerpt: String::new(),
                });
            }
        }
    }

    /// `root -> … -> fn` chain text for node `i` (capped at 8 hops).
    fn chain(&self, i: usize, parent: &[Option<usize>]) -> String {
        let mut path = vec![i];
        let mut cur = i;
        while let Some(p) = parent[cur] {
            path.push(p);
            cur = p;
            if path.len() > 8 {
                break;
            }
        }
        path.reverse();
        let names: Vec<String> = path.iter().map(|&j| self.nodes[j].def.qualified_name()).collect();
        names.join(" -> ")
    }

    /// P002: indexed access in a hot fn's innermost loop needs a dominating
    /// `assert!` that mentions the indexed name. Direct annotation only —
    /// the hoisting obligation is on the kernel author, not callers.
    fn bounds_checks(&self, findings: &mut Vec<Finding>) {
        for node in &self.nodes {
            if !node.def.hot {
                continue;
            }
            for site in &node.def.index_sites {
                let guarded =
                    node.def.asserts.iter().any(|a| {
                        a.line < site.loop_line && a.idents.iter().any(|id| id == &site.name)
                    });
                if !guarded {
                    findings.push(Finding {
                        rule: Rule::P002,
                        file: self.files[node.file].path.clone(),
                        line: site.line,
                        col: site.col,
                        message: format!(
                            "`{}[…]` in `{}`'s inner loop has no dominating length assert on \
                             `{}`; the bounds check stays in the loop",
                            site.name,
                            node.def.qualified_name(),
                            site.name
                        ),
                        excerpt: String::new(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_file;
    use crate::walk::classify;

    fn graph_findings(srcs: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<ParsedFile> =
            srcs.iter().map(|(path, src)| parse_file(&lex(src), &classify(path))).collect();
        CallGraph::build(&files).check()
    }

    #[test]
    fn cross_file_panic_reachability() {
        let a = "// rtt-lint: entry\npub fn serve() { helper(); }\n";
        let b = "pub fn helper() { inner().unwrap(); }\nfn inner() -> Option<u32> { None }\n";
        let f = graph_findings(&[("crates/a/src/lib.rs", a), ("crates/b/src/lib.rs", b)]);
        let r003: Vec<_> = f.iter().filter(|f| f.rule == Rule::R003).collect();
        assert_eq!(r003.len(), 1, "{f:?}");
        assert_eq!(r003[0].file, "crates/b/src/lib.rs");
        assert!(r003[0].message.contains("serve -> helper"), "{}", r003[0].message);
    }

    #[test]
    fn unreachable_panics_are_not_flagged() {
        let src = "// rtt-lint: entry\npub fn serve() { safe(); }\nfn safe() {}\n\
                   pub fn cold() { never().unwrap(); }\nfn never() -> Option<u32> { None }\n";
        let f = graph_findings(&[("crates/a/src/lib.rs", src)]);
        assert!(f.iter().all(|f| f.rule != Rule::R003), "{f:?}");
    }

    #[test]
    fn method_receiver_resolution_through_fields() {
        let a = "struct Gnn;\nimpl Gnn { pub fn fwd(&self) { danger(); } }\n\
                 pub struct Model { gnn: Gnn }\nimpl Model {\n// rtt-lint: entry\n\
                 pub fn predict(&self) { self.gnn.fwd(); }\n}\n\
                 fn danger() { panic!(\"boom\"); }\n";
        let f = graph_findings(&[("crates/a/src/lib.rs", a)]);
        let r003: Vec<_> = f.iter().filter(|f| f.rule == Rule::R003).collect();
        assert_eq!(r003.len(), 1, "{f:?}");
        assert!(
            r003[0].message.contains("Model::predict -> Gnn::fwd -> danger"),
            "{}",
            r003[0].message
        );
    }

    #[test]
    fn unknown_receiver_fans_out_conservatively() {
        // `x.fwd()` where `x` comes from a call whose return type the
        // parser cannot see: must still reach Gnn::fwd.
        let a = "struct Gnn;\nimpl Gnn { pub fn fwd(&self) { panic!(\"boom\"); } }\n\
                 // rtt-lint: entry\npub fn serve() { let x = make(); x.fwd(); }\n";
        let f = graph_findings(&[("crates/a/src/lib.rs", a)]);
        assert!(f.iter().any(|f| f.rule == Rule::R003), "{f:?}");
    }

    #[test]
    fn param_typed_receiver_does_not_fan_out() {
        // `store: &Store` types the receiver, so `store.fwd()` resolves to
        // Store::fwd (none here → opaque) instead of fanning out to the
        // unrelated panicking Gnn::fwd.
        let a = "struct Gnn;\nimpl Gnn { pub fn fwd(&self) { panic!(\"boom\"); } }\n\
                 struct Store;\nimpl Store {}\n\
                 // rtt-lint: entry\npub fn serve(store: &Store) { store.fwd(); }\n";
        let f = graph_findings(&[("crates/a/src/lib.rs", a)]);
        assert!(f.iter().all(|f| f.rule != Rule::R003), "{f:?}");
    }

    #[test]
    fn common_std_methods_stay_opaque() {
        // `.len()` must not fan out to a workspace method named `len` that
        // panics — wait, it's the reverse: there IS no workspace `len`
        // here; the call is simply opaque and nothing is flagged.
        let a = "// rtt-lint: entry\npub fn serve(v: &OpaqueVec) { let _ = v.len(); }\n";
        let f = graph_findings(&[("crates/a/src/lib.rs", a)]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn hot_allocation_flagged_and_map_index_is_a_panic() {
        let a = "// rtt-lint: hot\npub fn kernel(v: &[f32]) { let w = v.to_vec(); }\n\
                 // rtt-lint: entry\npub fn serve(m: &M) { let x = cache[&3]; }\n";
        let f = graph_findings(&[("crates/a/src/lib.rs", a)]);
        assert!(f.iter().any(|f| f.rule == Rule::P001), "{f:?}");
        assert!(f.iter().any(|f| f.rule == Rule::R003 && f.message.contains("map index")), "{f:?}");
    }

    #[test]
    fn p002_flags_unguarded_and_accepts_guarded() {
        let bad = "// rtt-lint: hot\npub fn k(a: &[f32], out: &mut [f32]) {\n\
                   for i in 0..a.len() { out[i] = a[i]; }\n}\n";
        let good = "// rtt-lint: hot\npub fn k(a: &[f32], out: &mut [f32]) {\n\
                    assert_eq!(a.len(), out.len());\n\
                    for i in 0..a.len() { out[i] = a[i]; }\n}\n";
        let fb = graph_findings(&[("crates/a/src/lib.rs", bad)]);
        assert!(fb.iter().any(|f| f.rule == Rule::P002), "{fb:?}");
        let fg = graph_findings(&[("crates/a/src/lib.rs", good)]);
        assert!(fg.iter().all(|f| f.rule != Rule::P002), "{fg:?}");
    }
}
