//! Deterministic workspace walker and file classification.

use crate::rules::{FileContext, FileKind};
use std::path::{Path, PathBuf};

/// Crates whose outputs feed the timing-prediction numeric path; D001
/// applies only here.
pub const DETERMINISM_CRITICAL: &[&str] = &["netlist", "sta", "features", "nn", "core", "flow"];

/// Collects every `.rs` file under the workspace root that the lint pass
/// covers, sorted by path so output order is stable. Skips `target/` and
/// any directory named `fixtures` (lint test inputs are intentionally
/// dirty).
pub fn workspace_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    for top in ["crates", "compat", "src", "tests", "examples", "benches"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for path in paths {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Classifies a repo-relative path into a [`FileContext`].
pub fn classify(rel: &str) -> FileContext {
    let segments: Vec<&str> = rel.split('/').collect();
    let crate_name = match segments.first() {
        Some(&"crates") | Some(&"compat") => segments.get(1).copied().unwrap_or(""),
        // Root `src/`, `tests/`, `examples/` belong to the facade package.
        _ => "restructure-timing",
    };
    let kind = if segments.contains(&"tests") {
        FileKind::Test
    } else if segments.contains(&"examples") {
        FileKind::Example
    } else if segments.contains(&"benches") || crate_name == "bench" {
        FileKind::Bench
    } else if segments.contains(&"bin") || segments.last().is_some_and(|s| *s == "main.rs") {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    FileContext {
        path: rel.to_owned(),
        crate_name: crate_name.to_owned(),
        determinism_critical: DETERMINISM_CRITICAL.contains(&crate_name),
        kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_layout() {
        let c = classify("crates/sta/src/propagate.rs");
        assert_eq!(c.crate_name, "sta");
        assert_eq!(c.kind, FileKind::Lib);
        assert!(c.determinism_critical);

        let c = classify("crates/flow/src/bin/table3.rs");
        assert_eq!(c.kind, FileKind::Bin);

        let c = classify("crates/nn/tests/determinism.rs");
        assert_eq!(c.kind, FileKind::Test);

        let c = classify("crates/bench/src/lib.rs");
        assert_eq!(c.kind, FileKind::Bench);
        assert!(!c.determinism_critical);

        let c = classify("src/lib.rs");
        assert_eq!(c.crate_name, "restructure-timing");
        assert_eq!(c.kind, FileKind::Lib);

        let c = classify("examples/end_to_end.rs");
        assert_eq!(c.kind, FileKind::Example);

        let c = classify("compat/rand/src/lib.rs");
        assert_eq!(c.crate_name, "rand");
        assert!(!c.determinism_critical);
    }
}
