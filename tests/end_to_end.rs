//! Cross-crate integration: the full experiment pipeline at tiny scale.

use restructure_timing::flow::tables::{
    ablation, table1, table2, table2_average, table3, Table2Config,
};
use restructure_timing::flow::{Dataset, FlowConfig};
use restructure_timing::prelude::*;

fn tiny_dataset() -> Dataset {
    let cfg = FlowConfig { scale: Scale::Tiny, ..FlowConfig::default() };
    Dataset::generate_subset(&cfg, 5, 2)
}

#[test]
#[ignore = "slow table reproduction; run with `cargo test -- --ignored`"]
fn full_pipeline_produces_all_tables() {
    let ds = tiny_dataset();

    // Table I.
    let t1 = table1(&ds);
    assert_eq!(t1.len(), 7);
    let restructured = t1.iter().filter(|r| r.net_replaced > 0.0).count();
    assert!(restructured >= 3, "most designs should see restructuring");

    // Table II at minimal training budget.
    let cfg = Table2Config {
        model: ModelConfig::tiny(),
        train: TrainConfig { epochs: 40, lr: 2e-3, ..TrainConfig::default() },
        two_stage_epochs: 40,
        guo_epochs: 6,
        ..Table2Config::default()
    };
    let t2 = table2(&ds, &cfg);
    assert_eq!(t2.len(), 2);
    let avg = table2_average(&t2);
    // The CNN-only model has no netlist information: it cannot meaningfully
    // outperform the netlist-aware full model (paper finding 6).
    assert!(avg.full > avg.cnn_only, "full {} should beat cnn-only {}", avg.full, avg.cnn_only);

    // Table III.
    let t3 = table3(&ds, &ModelConfig::tiny());
    assert!(t3.iter().all(|r| r.speedup.is_finite() && r.speedup > 0.0));

    // Ablations run.
    let ab = ablation(&ds, &ModelConfig::tiny(), &TrainConfig { epochs: 4, ..Default::default() });
    assert_eq!(ab.len(), 3);
}

#[test]
#[ignore = "slow multi-design training; run with `cargo test -- --ignored`"]
fn model_generalizes_across_designs_at_tiny_scale() {
    let ds = tiny_dataset();
    let lib = &ds.library;
    let cfg = ModelConfig::tiny();
    let train: Vec<PreparedDesign> =
        ds.train_designs().iter().map(|d| d.prepared(lib, &cfg)).collect();
    let mut model = TimingModel::new(cfg.clone());
    model.train(&train, &TrainConfig { epochs: 100, lr: 2e-3, ..TrainConfig::default() });
    for d in ds.test_designs() {
        let prep = d.prepared(lib, &cfg);
        let pred = model.predict(&prep);
        let truth = d.endpoint_targets();
        let r2 = r2_score(&pred, &truth);
        // Tiny designs + tiny model: just require the prediction to carry
        // real signal (far better than predicting noise).
        assert!(r2 > 0.0, "{}: R² {r2} suggests no learning at all", d.name);
    }
}

#[test]
fn facade_reexports_are_wired() {
    // The prelude must expose a usable end-to-end path.
    let lib = CellLibrary::asap7_like();
    let nl = ripple_carry_adder(4, &lib);
    let pl = place(&nl, &lib, 0, &PlaceConfig::default());
    let rt = route(&nl, &lib, &pl, &RouteConfig::default());
    let g = TimingGraph::build(&nl, &lib);
    let sta = run_sta(&nl, &lib, &g, WireModel::Routed(&rt), 500.0);
    assert!(sta.max_arrival() > 0.0);
    assert!((restructure_timing::flow::r2_score(&[1.0, 2.0], &[1.0, 2.0]) - 1.0).abs() < 1e-6);
}
