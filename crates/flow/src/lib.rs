//! End-to-end data generation and experiment orchestration.
//!
//! This crate reproduces the paper's dataset-generation flow (Section VI-A)
//! on the simulated substrates: synthesize (generate) → place → two
//! parallel flows — **without** timing optimization (route + STA) and
//! **with** it (optimize + route + STA, the sign-off labels) — then diff
//! the netlists for the replacement statistics.
//!
//! On top of the [`Dataset`] it implements the paper's experiments:
//!
//! * [`table1`](tables::table1) — dataset statistics and optimization
//!   impact (Table I);
//! * [`table2`](tables::table2) — R² comparison of the three baselines and
//!   the three model variants (Table II);
//! * [`table3`](tables::table3) — runtime and speedup vs the full
//!   "commercial" flow (Table III);
//! * [`ablation`](tables::ablation) — design-choice ablations (max vs mean
//!   aggregation, masked vs unmasked layout).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod design_data;
mod metrics;
pub mod tables;

pub use dataset::{run_design_flow, Dataset, FlowConfig};
pub use design_data::{DesignData, FlowTimings};
pub use metrics::{mae, r2_score};
