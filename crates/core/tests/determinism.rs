//! Thread-count determinism of training.
//!
//! `TimingModel::train` draws every batch serially up front, fans the
//! per-design forward/backward passes out in parallel, and folds the
//! gradients with a fixed-order tree sum — so the loss curve (and the
//! resulting weights) must be bit-identical at any thread count.

use rtt_circgen::GenParams;
use rtt_core::{ModelConfig, PreparedDesign, TimingModel, TrainConfig};
use rtt_netlist::{CellLibrary, TimingGraph};
use rtt_nn::parallel;
use rtt_place::{place, PlaceConfig};
use rtt_route::{route, RouteConfig};
use rtt_sta::{run_sta, WireModel};

fn prepare_design(cells: usize, seed: u64, cfg: &ModelConfig, lib: &CellLibrary) -> PreparedDesign {
    let d = GenParams::new(format!("det{seed}"), cells, seed).generate(lib);
    let pl = place(&d.netlist, lib, 0, &PlaceConfig::default());
    let rt = route(&d.netlist, lib, &pl, &RouteConfig::default());
    let graph = TimingGraph::build(&d.netlist, lib);
    let sta = run_sta(&d.netlist, lib, &graph, WireModel::Routed(&rt), 500.0);
    let targets = sta.endpoint_arrivals().iter().map(|&(_, a)| a).collect();
    PreparedDesign::prepare(&d.netlist, lib, &pl, &graph, cfg, targets)
}

#[test]
fn loss_curve_and_predictions_identical_across_thread_counts() {
    let lib = CellLibrary::asap7_like();
    let cfg = ModelConfig::tiny();
    let designs: Vec<PreparedDesign> =
        (0..3).map(|s| prepare_design(220, 40 + s, &cfg, &lib)).collect();
    let tc = TrainConfig { epochs: 5, ..TrainConfig::default() };

    parallel::set_num_threads(1);
    let mut serial_model = TimingModel::new(cfg.clone());
    let serial_log = serial_model.train(&designs, &tc);
    let serial_pred = serial_model.predict(&designs[0]);

    parallel::set_num_threads(4);
    let mut par_model = TimingModel::new(cfg.clone());
    let par_log = par_model.train(&designs, &tc);
    let par_pred = par_model.predict(&designs[0]);
    parallel::set_num_threads(1);

    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&serial_log.epoch_loss),
        bits(&par_log.epoch_loss),
        "loss curves diverged across thread counts"
    );
    assert_eq!(bits(&serial_pred), bits(&par_pred), "trained weights diverged");
}
