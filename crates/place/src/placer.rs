//! Force-directed global placement with macro carving and bin spreading.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rtt_netlist::{CellId, CellLibrary, Netlist, PinId};

use crate::{Floorplan, Grid, Point, Rect};

/// Placement configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct PlaceConfig {
    /// Target standard-cell utilization of the non-macro die area. The
    /// optimizer's freedom (and hence the paper's layout signal) depends on
    /// the whitespace this leaves.
    pub utilization: f32,
    /// Spreading-grid resolution (bins per die edge).
    pub bins: usize,
    /// Force-directed iterations.
    pub iterations: usize,
    /// Die area fraction consumed by each macro block.
    pub macro_fraction: f32,
    /// RNG seed for initial placement and spreading decisions.
    pub seed: u64,
}

impl Default for PlaceConfig {
    fn default() -> Self {
        Self { utilization: 0.55, bins: 24, iterations: 24, macro_fraction: 0.07, seed: 1 }
    }
}

/// A completed placement: die, macros, cell positions, port positions.
#[derive(Clone, Debug)]
pub struct Placement {
    floorplan: Floorplan,
    cell_pos: Vec<Point>,
    port_pos: Vec<Option<Point>>,
}

impl Placement {
    /// Creates an all-at-origin placement for `netlist` over `floorplan`;
    /// positions are filled in with [`Self::place_cell`] /
    /// [`Self::place_port`] (used by the placement parser).
    pub fn empty(floorplan: Floorplan, netlist: &Netlist) -> Self {
        Self {
            floorplan,
            cell_pos: vec![Point::default(); netlist.cell_capacity()],
            port_pos: vec![None; netlist.pin_capacity()],
        }
    }

    /// The floorplan (die outline and macro blocks).
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// Sets the location of a top-level port pin.
    pub fn place_port(&mut self, pin: PinId, p: Point) {
        if pin.index() >= self.port_pos.len() {
            self.port_pos.resize(pin.index() + 1, None);
        }
        self.port_pos[pin.index()] = Some(p);
    }

    /// Position of cell `c` (its center).
    ///
    /// # Panics
    ///
    /// Panics if the cell was never placed (out of range).
    pub fn cell_pos(&self, c: CellId) -> Point {
        self.cell_pos[c.index()]
    }

    /// Moves (or first places) cell `c`, growing the table if `c` was
    /// created after the initial placement — this is how the timing
    /// optimizer legalizes inserted buffers.
    pub fn place_cell(&mut self, c: CellId, p: Point) {
        if c.index() >= self.cell_pos.len() {
            self.cell_pos.resize(c.index() + 1, Point::default());
        }
        self.cell_pos[c.index()] = p;
    }

    /// Position of any pin: its cell's position, or the port location.
    ///
    /// Every port is placed by the placer before timing or feature code
    /// runs; that invariant is debug-checked, and release builds fall
    /// back to the origin instead of panicking on the serving path.
    pub fn pin_position(&self, netlist: &Netlist, pin: PinId) -> Point {
        match netlist.pin(pin).cell {
            Some(c) => self.cell_pos(c),
            None => {
                let p = self.port_pos.get(pin.index()).copied().flatten();
                debug_assert!(p.is_some(), "port {pin} was placed");
                p.unwrap_or_default()
            }
        }
    }

    /// Total half-perimeter wirelength over all live nets, in µm.
    pub fn hpwl(&self, netlist: &Netlist) -> f64 {
        let mut total = 0.0f64;
        for (_, net) in netlist.nets() {
            let d = self.pin_position(netlist, net.driver);
            let (mut x0, mut x1, mut y0, mut y1) = (d.x, d.x, d.y, d.y);
            for &s in &net.sinks {
                let p = self.pin_position(netlist, s);
                x0 = x0.min(p.x);
                x1 = x1.max(p.x);
                y0 = y0.min(p.y);
                y1 = y1.max(p.y);
            }
            total += f64::from((x1 - x0) + (y1 - y0));
        }
        total
    }
}

/// Places `netlist` on a die sized for `config.utilization`, carving
/// `num_macros` macro blocks first.
///
/// Deterministic for fixed inputs and seed.
pub fn place(
    netlist: &Netlist,
    library: &CellLibrary,
    num_macros: usize,
    config: &PlaceConfig,
) -> Placement {
    let obs = rtt_obs::span("place::place");
    obs.add("cells", netlist.num_cells() as u64);
    obs.add("iterations", config.iterations as u64);
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Die sizing: standard-cell area / utilization, plus macro area.
    let cell_area = netlist.total_cell_area(library) as f32;
    let std_area = (cell_area / config.utilization.max(0.05)).max(1.0);
    let macro_blowup = 1.0 / (1.0 - config.macro_fraction * num_macros as f32).max(0.3);
    let side = (std_area * macro_blowup).sqrt().max(2.0);
    let die = Rect::new(0.0, 0.0, side, side);

    let macros = carve_macros(die, num_macros, config.macro_fraction, &mut rng);
    let floorplan = Floorplan { die, macros };

    // Ports: inputs on the left edge, outputs on the right, evenly spread.
    let mut port_pos = vec![None; netlist.pin_capacity()];
    for (edge_x, ports) in [(die.x0, netlist.input_ports()), (die.x1, netlist.output_ports())] {
        let n = ports.len().max(1) as f32;
        for (i, &p) in ports.iter().enumerate() {
            let y = die.y0 + die.height() * (i as f32 + 0.5) / n;
            port_pos[p.index()] = Some(Point::new(edge_x, y));
        }
    }

    // Initial placement: random placeable points.
    let mut cell_pos = vec![Point::default(); netlist.cell_capacity()];
    for (cid, _) in netlist.cells() {
        cell_pos[cid.index()] = random_placeable(&floorplan, &mut rng);
    }

    let placement = Placement { floorplan, cell_pos, port_pos };
    refine(netlist, library, placement, config, &mut rng)
}

/// Carves non-overlapping macro rectangles near the die corners/edges.
fn carve_macros(die: Rect, count: usize, fraction: f32, rng: &mut StdRng) -> Vec<Rect> {
    let mut macros: Vec<Rect> = Vec::with_capacity(count);
    let die_area = die.area();
    'outer: for k in 0..count {
        let area = die_area * fraction * rng.gen_range(0.8..1.2);
        for _attempt in 0..64 {
            let aspect = rng.gen_range(0.6..1.6);
            let w = (area * aspect).sqrt().min(die.width() * 0.45);
            let h = (area / aspect).sqrt().min(die.height() * 0.45);
            // Prefer corners (k cycles through them), then random interior.
            let (x0, y0) = match k % 4 {
                0 => (die.x0, die.y0),
                1 => (die.x1 - w, die.y0),
                2 => (die.x0, die.y1 - h),
                3 => (die.x1 - w, die.y1 - h),
                _ => unreachable!(),
            };
            let jitter = rng.gen_range(0.0..0.15f32);
            let cand = Rect::new(
                (x0 + jitter * die.width()).clamp(die.x0, die.x1 - w),
                (y0 + jitter * die.height()).clamp(die.y0, die.y1 - h),
                0.0,
                0.0,
            );
            let cand = Rect::new(cand.x0, cand.y0, cand.x0 + w, cand.y0 + h);
            if !macros.iter().any(|m| m.overlaps(&cand.inflate(die.width() * 0.02))) {
                macros.push(cand);
                continue 'outer;
            }
        }
        // Could not fit this macro without overlap: skip it.
    }
    macros
}

fn random_placeable(fp: &Floorplan, rng: &mut StdRng) -> Point {
    for _ in 0..128 {
        let p =
            Point::new(rng.gen_range(fp.die.x0..fp.die.x1), rng.gen_range(fp.die.y0..fp.die.y1));
        if fp.is_placeable(p) {
            return p;
        }
    }
    fp.die.center()
}

/// Force-directed refinement: pull every cell toward the centroid of its
/// connected pins, then spread overfull bins.
fn refine(
    netlist: &Netlist,
    library: &CellLibrary,
    mut placement: Placement,
    config: &PlaceConfig,
    rng: &mut StdRng,
) -> Placement {
    rtt_obs::span!("place::refine");
    let live_cells: Vec<CellId> = netlist.cells().map(|(c, _)| c).collect();
    for iter in 0..config.iterations {
        // Cooling schedule: strong pull early, gentler later.
        let alpha = 0.75 * (1.0 - iter as f32 / config.iterations as f32) + 0.15;
        for &cid in &live_cells {
            let cell = netlist.cell(cid);
            let mut sx = 0.0f32;
            let mut sy = 0.0f32;
            let mut n = 0u32;
            for &pin in cell.inputs.iter().chain(std::iter::once(&cell.output)) {
                let Some(net_id) = netlist.pin(pin).net else { continue };
                let net = netlist.net(net_id);
                for &other in std::iter::once(&net.driver).chain(net.sinks.iter()) {
                    if netlist.pin(other).cell == Some(cid) {
                        continue;
                    }
                    let p = placement.pin_position(netlist, other);
                    sx += p.x;
                    sy += p.y;
                    n += 1;
                }
            }
            if n == 0 {
                continue;
            }
            let old = placement.cell_pos(cid);
            let target = Point::new(sx / n as f32, sy / n as f32);
            let mut new =
                Point::new(old.x + alpha * (target.x - old.x), old.y + alpha * (target.y - old.y));
            new = placement.floorplan.die.clamp(new);
            new = push_out_of_macros(&placement.floorplan, new, old);
            placement.cell_pos[cid.index()] = new;
        }
        spread(netlist, library, &mut placement, config, rng);
    }
    placement
}

/// If `p` landed in a macro, push it to the macro edge nearest to `p`.
fn push_out_of_macros(fp: &Floorplan, p: Point, fallback: Point) -> Point {
    for m in &fp.macros {
        if m.contains(p) {
            // Candidate exits on all four sides; take the closest inside die.
            let eps = 1e-3;
            let cands = [
                Point::new(m.x0 - eps, p.y),
                Point::new(m.x1 + eps, p.y),
                Point::new(p.x, m.y0 - eps),
                Point::new(p.x, m.y1 + eps),
            ];
            let best = cands
                .into_iter()
                .filter(|c| fp.die.contains(*c))
                .min_by(|a, b| a.manhattan(p).partial_cmp(&b.manhattan(p)).expect("finite"));
            return best.unwrap_or(fallback);
        }
    }
    p
}

/// Moves cells out of overfull bins into nearby underfull bins.
fn spread(
    netlist: &Netlist,
    library: &CellLibrary,
    placement: &mut Placement,
    config: &PlaceConfig,
    rng: &mut StdRng,
) {
    rtt_obs::span!("place::spread");
    let fp = placement.floorplan.clone();
    // Adapt the grid so an average bin holds several cells; a grid finer
    // than the design cannot express meaningful density.
    let bins = ((netlist.num_cells() as f32 / 8.0).sqrt().floor() as usize).clamp(2, config.bins);
    let mut occupancy = Grid::new(bins, bins, fp.die);
    let mut members: Vec<Vec<CellId>> = vec![Vec::new(); bins * bins];
    for (cid, cell) in netlist.cells() {
        let p = placement.cell_pos(cid);
        let (bx, by) = occupancy.bin_of(p.x, p.y);
        let area = library.cell_type(cell.type_id).area_um2;
        occupancy.set(bx, by, occupancy.at(bx, by) + area);
        members[by * bins + bx].push(cid);
    }
    let (bw, bh) = occupancy.bin_size();
    let capacity = bw * bh; // utilization-1.0 capacity per bin
                            // Allow modest clumping over the average, hard-capped below 1.0 so the
                            // downstream optimizer's legality checks see real whitespace structure
                            // rather than uniformly saturated bins.
    let limit = capacity * (config.utilization.max(0.2) * 1.25).min(0.92);

    for by in 0..bins {
        for bx in 0..bins {
            let mut load = occupancy.at(bx, by);
            if load <= limit {
                continue;
            }
            let cells = members[by * bins + bx].clone();
            for cid in cells {
                if load <= limit {
                    break;
                }
                // Find the least-loaded neighbor bin within radius 2.
                let mut best: Option<(usize, usize, f32)> = None;
                for dy in -2i32..=2 {
                    for dx in -2i32..=2 {
                        if dx == 0 && dy == 0 {
                            continue;
                        }
                        let nx = bx as i32 + dx;
                        let ny = by as i32 + dy;
                        if nx < 0 || ny < 0 || nx >= bins as i32 || ny >= bins as i32 {
                            continue;
                        }
                        let (nx, ny) = (nx as usize, ny as usize);
                        let l = occupancy.at(nx, ny);
                        if best.is_none_or(|(_, _, bl)| l < bl) {
                            best = Some((nx, ny, l));
                        }
                    }
                }
                let Some((nx, ny, _)) = best else { break };
                let r = occupancy.bin_rect(nx, ny);
                let p = Point::new(
                    rng.gen_range(r.x0..r.x1.max(r.x0 + 1e-3)),
                    rng.gen_range(r.y0..r.y1.max(r.y0 + 1e-3)),
                );
                if !fp.is_placeable(p) {
                    continue;
                }
                let area = library.cell_type(netlist.cell(cid).type_id).area_um2;
                placement.cell_pos[cid.index()] = p;
                load -= area;
                occupancy.set(bx, by, load);
                occupancy.set(nx, ny, occupancy.at(nx, ny) + area);
            }
        }
    }
}

/// Builds the standard-cell density map: per-bin placed cell area divided by
/// bin area (the paper's first layout feature).
pub fn density_map(
    netlist: &Netlist,
    library: &CellLibrary,
    placement: &Placement,
    w: usize,
    h: usize,
) -> Grid {
    let mut g = Grid::new(w, h, placement.floorplan().die);
    for (cid, cell) in netlist.cells() {
        let p = placement.cell_pos(cid);
        let area = library.cell_type(cell.type_id).area_um2;
        let (bx, by) = g.bin_of(p.x, p.y);
        g.set(bx, by, g.at(bx, by) + area);
    }
    g.normalize_by_bin_area();
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtt_circgen::GenParams;

    fn placed(cells: usize, macros: usize, seed: u64) -> (CellLibrary, Netlist, Placement) {
        let lib = CellLibrary::asap7_like();
        let d = GenParams::new("p", cells, seed).generate(&lib);
        let cfg = PlaceConfig { seed, ..PlaceConfig::default() };
        let pl = place(&d.netlist, &lib, macros, &cfg);
        (lib, d.netlist, pl)
    }

    #[test]
    fn all_cells_inside_die_and_outside_macros() {
        let (_, nl, pl) = placed(400, 2, 3);
        for (cid, _) in nl.cells() {
            let p = pl.cell_pos(cid);
            assert!(pl.floorplan().die.contains(p), "cell {cid} at {p} off-die");
            for m in &pl.floorplan().macros {
                assert!(!m.contains(p), "cell {cid} at {p} inside macro");
            }
        }
    }

    #[test]
    fn ports_sit_on_die_edges() {
        let (_, nl, pl) = placed(200, 0, 5);
        for &p in nl.input_ports() {
            assert_eq!(pl.pin_position(&nl, p).x, pl.floorplan().die.x0);
        }
        for &p in nl.output_ports() {
            assert_eq!(pl.pin_position(&nl, p).x, pl.floorplan().die.x1);
        }
    }

    #[test]
    fn refinement_reduces_wirelength() {
        let lib = CellLibrary::asap7_like();
        let d = GenParams::new("wl", 400, 9).generate(&lib);
        let zero = PlaceConfig { iterations: 0, seed: 9, ..PlaceConfig::default() };
        let many = PlaceConfig { iterations: 24, seed: 9, ..PlaceConfig::default() };
        let p0 = place(&d.netlist, &lib, 0, &zero);
        let p1 = place(&d.netlist, &lib, 0, &many);
        assert!(
            p1.hpwl(&d.netlist) < p0.hpwl(&d.netlist) * 0.8,
            "refined {} vs initial {}",
            p1.hpwl(&d.netlist),
            p0.hpwl(&d.netlist)
        );
    }

    #[test]
    fn placement_is_deterministic() {
        let (_, nl, a) = placed(150, 1, 7);
        let (_, _, b) = placed(150, 1, 7);
        for (cid, _) in nl.cells() {
            assert_eq!(a.cell_pos(cid), b.cell_pos(cid));
        }
    }

    #[test]
    fn macros_do_not_overlap() {
        let (_, _, pl) = placed(600, 4, 11);
        let ms = &pl.floorplan().macros;
        assert!(!ms.is_empty());
        for i in 0..ms.len() {
            for j in i + 1..ms.len() {
                assert!(!ms[i].overlaps(&ms[j]));
            }
        }
    }

    #[test]
    fn place_cell_grows_table() {
        let (_, _, mut pl) = placed(50, 0, 13);
        let far = CellId::from_index(10_000);
        pl.place_cell(far, Point::new(1.0, 2.0));
        assert_eq!(pl.cell_pos(far), Point::new(1.0, 2.0));
    }

    #[test]
    fn density_map_reflects_utilization() {
        let (lib, nl, pl) = placed(500, 0, 17);
        let g = density_map(&nl, &lib, &pl, 16, 16);
        let total_area: f32 = nl.total_cell_area(&lib) as f32;
        let (bw, bh) = g.bin_size();
        // Total mass (density × bin area) equals total placed area.
        let mass: f32 = g.values().iter().map(|v| v * bw * bh).sum();
        assert!((mass - total_area).abs() / total_area < 1e-3);
        // Mean utilization should be near the configured target.
        let die_area = pl.floorplan().die.area();
        let util = total_area / die_area;
        assert!(util > 0.3 && util < 0.8, "utilization {util}");
    }

    #[test]
    fn hpwl_is_positive_and_finite() {
        let (_, nl, pl) = placed(120, 0, 19);
        let wl = pl.hpwl(&nl);
        assert!(wl.is_finite() && wl > 0.0);
    }
}
