//! Tier-1 smoke test for the prediction daemon: ephemeral port, HTTP
//! predictions bit-exact against the library path, hot-reload swapping
//! real weights, runtime design registration, and a clean drain.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use restructure_timing::model::model_io::save_model;
use restructure_timing::netlist::write_verilog;
use restructure_timing::place::write_placement;
use restructure_timing::prelude::*;
use restructure_timing::serve::{ServeConfig, Server};

fn fixture(bits: usize) -> (CellLibrary, Netlist, Placement, TimingGraph) {
    let lib = CellLibrary::asap7_like();
    let nl = ripple_carry_adder(bits, &lib);
    let pl = place(&nl, &lib, 0, &PlaceConfig::default());
    let graph = TimingGraph::build(&nl, &lib);
    (lib, nl, pl, graph)
}

fn prepared(
    lib: &CellLibrary,
    nl: &Netlist,
    pl: &Placement,
    graph: &TimingGraph,
    cfg: &ModelConfig,
) -> PreparedDesign {
    let targets = vec![0.0f32; graph.endpoints().len()];
    PreparedDesign::prepare(nl, lib, pl, graph, cfg, targets)
}

/// Minimal blocking HTTP client: one request, one parsed response.
fn http(addr: SocketAddr, raw: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    stream.write_all(raw).expect("send request");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some((status, head_len, body_len)) = head(&buf) {
            if buf.len() >= head_len + body_len {
                return (status, buf[head_len..head_len + body_len].to_vec());
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => panic!("connection closed before a full response"),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read: {e}"),
        }
    }
}

fn head(buf: &[u8]) -> Option<(u16, usize, usize)> {
    let end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let text = std::str::from_utf8(&buf[..end]).ok()?;
    let status = text.split(' ').nth(1)?.parse().ok()?;
    let body_len = text
        .lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))?
        .1
        .trim()
        .parse()
        .ok()?;
    Some((status, end, body_len))
}

fn get(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").into_bytes()
}

fn post(path: &str, headers: &str, body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n{headers}Content-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

fn predict_bits(body: &[u8]) -> (u64, Vec<u32>) {
    let text = std::str::from_utf8(body).expect("utf-8 predict body");
    let mut lines = text.lines();
    let n: usize = lines
        .next()
        .and_then(|l| l.strip_prefix("n="))
        .and_then(|v| v.parse().ok())
        .expect("n= line");
    let generation: u64 = lines
        .next()
        .and_then(|l| l.strip_prefix("generation="))
        .and_then(|v| v.parse().ok())
        .expect("generation= line");
    let bits: Vec<u32> = lines.map(|l| l.parse::<f32>().expect("float line").to_bits()).collect();
    assert_eq!(bits.len(), n);
    (generation, bits)
}

fn bits_of(preds: &[f32]) -> Vec<u32> {
    preds.iter().map(|p| p.to_bits()).collect()
}

#[test]
fn daemon_serves_bit_exact_predictions_reloads_and_drains() {
    let (lib, nl, pl, graph) = fixture(8);
    let cfg = ModelConfig::tiny();
    let prep = prepared(&lib, &nl, &pl, &graph, &cfg);
    let boot_model = TimingModel::new(cfg.clone());

    // A second model with genuinely different weights, for the reload.
    let mut trained = TimingModel::new(cfg.clone());
    {
        let targets: Vec<f32> = (0..graph.endpoints().len()).map(|i| 50.0 + i as f32).collect();
        let train_prep = PreparedDesign::prepare(&nl, &lib, &pl, &graph, &cfg, targets);
        trained.train(&[train_prep], &TrainConfig { epochs: 2, ..TrainConfig::default() });
    }

    let dir = std::env::temp_dir().join(format!("rtt-serve-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let weights = dir.join("model.rttm");
    std::fs::write(&weights, save_model(&boot_model)).expect("write boot weights");

    let serve_cfg = ServeConfig { weights_path: Some(weights.clone()), ..ServeConfig::default() };
    let mut server =
        Server::start(serve_cfg, boot_model.clone(), vec![("rca".to_owned(), prep.clone())])
            .expect("daemon starts on an ephemeral port");
    let addr = server.addr();

    let (status, body) = http(addr, &get("/healthz"));
    assert_eq!((status, body.as_slice()), (200, &b"ok\n"[..]));

    // Bit-exactness against the library fast path, full and subset.
    let ctx = restructure_timing::nn::InferCtx::new();
    let all: Vec<u32> = (0..prep.num_endpoints() as u32).collect();
    let expect_all = bits_of(&boot_model.predict_batch(&ctx, &prep, &all));
    let (status, body) = http(addr, &post("/predict", "", b"design=rca\n"));
    assert_eq!(status, 200);
    let (generation, got) = predict_bits(&body);
    assert_eq!(generation, 1);
    assert_eq!(got, expect_all, "HTTP predictions must match the library bit-for-bit");

    let subset = [4u32, 0, 9];
    let expect_subset = bits_of(&boot_model.predict_batch(&ctx, &prep, &subset));
    let (status, body) = http(addr, &post("/predict", "", b"design=rca\nindices=4,0,9\n"));
    assert_eq!(status, 200);
    assert_eq!(predict_bits(&body).1, expect_subset, "index subsets too");

    // Typed client errors, not panics.
    let (status, _) = http(addr, &post("/predict", "", b"design=missing\n"));
    assert_eq!(status, 404);
    let (status, _) = http(addr, &post("/predict", "", b"design=rca\nindices=999999\n"));
    assert_eq!(status, 422);
    let (status, _) = http(addr, &get("/nope"));
    assert_eq!(status, 404);

    // Hot-reload: overwrite the weights file and POST /reload; new
    // predictions must be bit-exact for the *new* model.
    std::fs::write(&weights, save_model(&trained)).expect("write trained weights");
    let (status, body) = http(addr, &post("/reload", "", b""));
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(body, b"generation=2\n");
    let expect_trained = bits_of(&trained.predict_batch(&ctx, &prep, &all));
    let (status, body) = http(addr, &post("/predict", "", b"design=rca\n"));
    assert_eq!(status, 200);
    let (generation, got) = predict_bits(&body);
    assert_eq!(generation, 2, "reload must bump the generation");
    assert_eq!(got, expect_trained, "post-reload predictions use the new weights");
    assert_ne!(got, expect_all, "the reload really changed the weights");

    // Runtime design registration over HTTP, then predict on it.
    let (lib2, nl2, pl2, _) = fixture(4);
    let verilog = write_verilog(&nl2, &lib2);
    let placement = write_placement(&nl2, &pl2);
    let mut body2 = verilog.clone().into_bytes();
    body2.extend_from_slice(placement.as_bytes());
    let (status, body) = http(
        addr,
        &post("/load?name=rca4", &format!("X-Netlist-Bytes: {}\r\n", verilog.len()), &body2),
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    // The text round-trip can reorder cells/pins, so build the reference
    // from the same serialized files the server parsed.
    let nl2 = restructure_timing::netlist::parse_verilog(&verilog, &lib2).expect("round-trip");
    let pl2 = restructure_timing::place::parse_placement(&nl2, &placement).expect("round-trip");
    let graph2 = TimingGraph::build(&nl2, &lib2);
    let prep2 = prepared(&lib2, &nl2, &pl2, &graph2, &cfg);
    let all2: Vec<u32> = (0..prep2.num_endpoints() as u32).collect();
    let expect2 = bits_of(&trained.predict_batch(&ctx, &prep2, &all2));
    let (status, body) = http(addr, &post("/predict", "", b"design=rca4\n"));
    assert_eq!(status, 200);
    assert_eq!(predict_bits(&body).1, expect2, "a design loaded over HTTP predicts bit-exactly");

    // /stats is valid JSON with sane counters.
    let (status, body) = http(addr, &get("/stats"));
    assert_eq!(status, 200);
    let doc =
        restructure_timing::obs::json::Value::parse(std::str::from_utf8(&body).expect("utf-8"))
            .expect("stats parses as JSON");
    let num = |key: &str| -> u64 {
        match doc.get(key) {
            Some(restructure_timing::obs::json::Value::Num(n)) => n.parse().expect("integer"),
            other => panic!("stats[{key}] = {other:?}"),
        }
    };
    assert!(num("requests") >= 8);
    assert_eq!(num("worker_panics"), 0);
    assert_eq!(num("generation"), 2);
    assert_eq!(num("designs"), 2);
    assert!(num("endpoints_predicted") >= 2 * prep.num_endpoints() as u64);

    // POST /shutdown flips the flag the CLI loop watches; the drain
    // itself must answer everything and join.
    let (status, _) = http(addr, &post("/shutdown", "", b""));
    assert_eq!(status, 200);
    assert!(server.shutdown_requested());
    let report = server.shutdown();
    assert_eq!(report.stats.worker_panics, 0);
    assert!(report.stats.responses_2xx >= 8);
    drop(std::fs::remove_dir_all(dir));
}

/// Server-side restructuring: `/load` a design with sources, `/transform`
/// it, and check an incremental `/predict` is byte-identical to a cold
/// daemon booted directly on the transformed design. Then, under a
/// mid-transform injected abort, check the design and its activation
/// cache are left exactly as they were (no torn state, no stale cache).
#[test]
fn daemon_transforms_designs_and_serves_incremental_predictions() {
    use restructure_timing::opt;
    use restructure_timing::serve::fault::{FaultMode, FaultSpec};

    let (lib, nl, pl, _) = fixture(6);
    let cfg = ModelConfig::tiny();
    let model = TimingModel::new(cfg.clone());

    let server = Server::start(ServeConfig::default(), model.clone(), vec![])
        .expect("daemon starts on an ephemeral port");
    let addr = server.addr();

    // Register the design over HTTP so the daemon retains its sources.
    let verilog = write_verilog(&nl, &lib);
    let placement_txt = write_placement(&nl, &pl);
    let mut load_body = verilog.clone().into_bytes();
    load_body.extend_from_slice(placement_txt.as_bytes());
    let (status, body) = http(
        addr,
        &post("/load?name=rca", &format!("X-Netlist-Bytes: {}\r\n", verilog.len()), &load_body),
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    // The text round-trip can reorder cells/pins; the reference mirrors
    // the server by re-parsing the same serialized files.
    let mut nl = restructure_timing::netlist::parse_verilog(&verilog, &lib).expect("round-trip");
    let mut pl =
        restructure_timing::place::parse_placement(&nl, &placement_txt).expect("round-trip");

    // Priming pass: a cold incremental predict is an ordinary full
    // forward, so its response must already be byte-identical to full mode.
    let (status, warm0) = http(addr, &post("/predict", "", b"design=rca\nmode=incremental\n"));
    assert_eq!(status, 200);
    let (status, full0) = http(addr, &post("/predict", "", b"design=rca\nmode=full\n"));
    assert_eq!(status, 200);
    assert_eq!(warm0, full0, "cold incremental /predict must equal full /predict byte-for-byte");

    // Transform server-side: insert a buffer on the first sink-bearing net.
    let (net, sink) = nl
        .nets()
        .find_map(|(id, n)| n.sinks.first().map(|&s| (id, s)))
        .expect("fixture has a net with sinks");
    let a = pl.pin_position(&nl, nl.net(net).driver);
    let b = pl.pin_position(&nl, sink);
    let pos = restructure_timing::place::Point::new((a.x + b.x) * 0.5, (a.y + b.y) * 0.5);
    let req = format!(
        "design=rca\nop=buffer\nnet={}\nsink={}\npos={},{}\n",
        net.index(),
        sink.index(),
        pos.x,
        pos.y
    );
    let (status, body) = http(addr, &post("/transform", "", req.as_bytes()));
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let text = String::from_utf8(body).expect("utf-8 transform body");
    assert!(text.starts_with("generation=2\n"), "design generation must bump: {text:?}");
    let dirty: usize = text
        .lines()
        .find_map(|l| l.strip_prefix("dirty="))
        .and_then(|v| v.parse().ok())
        .expect("dirty= line");
    assert!(dirty >= 1, "buffer insertion must seed dirty pins");

    // Cold daemon booted directly on the transformed design: the warm
    // daemon's incremental response must match it byte-for-byte.
    opt::insert_buffer(&mut nl, &mut pl, &lib, net, sink, pos).expect("reference transform");
    let graph_t = TimingGraph::build(&nl, &lib);
    let prep_t = prepared(&lib, &nl, &pl, &graph_t, &cfg);
    let cold_server =
        Server::start(ServeConfig::default(), model.clone(), vec![("rca".to_owned(), prep_t)])
            .expect("cold daemon starts");
    let (status, cold) = http(cold_server.addr(), &post("/predict", "", b"design=rca\n"));
    assert_eq!(status, 200);
    let (status, warm) = http(addr, &post("/predict", "", b"design=rca\nmode=incremental\n"));
    assert_eq!(status, 200);
    assert_eq!(warm, cold, "incremental /predict must be byte-identical to a cold daemon");

    // Index subsets ride the same cache.
    let (status, cold_sub) =
        http(cold_server.addr(), &post("/predict", "", b"design=rca\nindices=2,0,5\n"));
    assert_eq!(status, 200);
    let (status, warm_sub) =
        http(addr, &post("/predict", "", b"design=rca\nindices=2,0,5\nmode=incremental\n"));
    assert_eq!(status, 200);
    assert_eq!(warm_sub, cold_sub, "subset predictions too");

    // Chaos: with TransformAbort firing on every decision, /transform
    // mutates its working copies, then aborts before publishing. Nothing
    // — generation, pending seeds, activation cache — may change.
    let chaos_cfg = ServeConfig {
        faults: FaultSpec::new(11).mode(FaultMode::TransformAbort, 1.0).build(),
        ..ServeConfig::default()
    };
    let chaos = Server::start(chaos_cfg, model, vec![]).expect("chaos daemon starts");
    let (status, body) = http(
        chaos.addr(),
        &post("/load?name=rca", &format!("X-Netlist-Bytes: {}\r\n", verilog.len()), &load_body),
    );
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let (status, primed) =
        http(chaos.addr(), &post("/predict", "", b"design=rca\nmode=incremental\n"));
    assert_eq!(status, 200);
    let (status, body) = http(chaos.addr(), &post("/transform", "", req.as_bytes()));
    assert_eq!(status, 500, "injected abort must surface as 500");
    assert_eq!(body, b"injected transform abort\n");
    let (status, after_abort) =
        http(chaos.addr(), &post("/predict", "", b"design=rca\nmode=incremental\n"));
    assert_eq!(status, 200);
    assert_eq!(after_abort, primed, "an aborted transform must not leave a stale cache");
    let (status, after_full) = http(chaos.addr(), &post("/predict", "", b"design=rca\n"));
    assert_eq!(status, 200);
    assert_eq!(after_abort, after_full, "incremental still agrees with full after the abort");

    // The injected fault is visible on /stats.
    let (status, body) = http(chaos.addr(), &get("/stats"));
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("utf-8 stats");
    assert!(text.contains("\"transform_abort\":1"), "stats must count the injected abort: {text}");
}
