//! Restructure-tolerant pre-routing timing prediction via multimodal
//! (GNN + CNN) fusion — a full Rust reproduction of the DAC 2023 paper,
//! including every substrate it depends on.
//!
//! This facade crate re-exports the workspace under stable module names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`netlist`] | `rtt-netlist` | cell library, netlist, pin-level timing graph |
//! | [`circgen`] | `rtt-circgen` | synthetic design generator, paper-named presets |
//! | [`place`] | `rtt-place` | floorplanning, global placement, density |
//! | [`route`] | `rtt-route` | Steiner routing estimator, RC trees, RUDY |
//! | [`sta`] | `rtt-sta` | Elmore/PERT static timing analysis |
//! | [`opt`] | `rtt-opt` | restructuring timing optimizer + netlist diff |
//! | [`nn`] | `rtt-nn` | reverse-mode autodiff tensor engine |
//! | [`obs`] | `rtt-obs` | deterministic spans, counters, trace exporters |
//! | [`features`] | `rtt-features` | node features, layout maps, endpoint masks |
//! | [`model`] | `rtt-core` | the endpoint-embedding multimodal model |
//! | [`baselines`] | `rtt-baselines` | DAC19 / DAC22-he / DAC22-guo |
//! | [`flow`] | `rtt-flow` | dataset generation, metrics, table experiments |
//! | [`serve`] | `rtt-serve` | fault-tolerant HTTP prediction daemon |
//!
//! # Quickstart
//!
//! ```
//! use restructure_timing::prelude::*;
//!
//! // Generate, place, and analyze a small design.
//! let lib = CellLibrary::asap7_like();
//! let design = preset("xgate", Scale::Tiny).expect("known preset").generate(&lib);
//! let placement = place(&design.netlist, &lib, 0, &PlaceConfig::default());
//! let routing = route(&design.netlist, &lib, &placement, &RouteConfig::default());
//! let graph = TimingGraph::build(&design.netlist, &lib);
//! let sta = run_sta(&design.netlist, &lib, &graph, WireModel::Routed(&routing), 500.0);
//! assert!(!sta.endpoint_arrivals().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rtt_baselines as baselines;
pub use rtt_circgen as circgen;
pub use rtt_core as model;
pub use rtt_features as features;
pub use rtt_flow as flow;
pub use rtt_netlist as netlist;
pub use rtt_nn as nn;
pub use rtt_obs as obs;
pub use rtt_opt as opt;
pub use rtt_place as place;
pub use rtt_route as route;
pub use rtt_serve as serve;
pub use rtt_sta as sta;

/// The most common imports, for examples and quick experiments.
pub mod prelude {
    pub use rtt_circgen::{preset, ripple_carry_adder, GenParams, Scale};
    pub use rtt_core::{ModelConfig, ModelVariant, PreparedDesign, TimingModel, TrainConfig};
    pub use rtt_features::{endpoint_masks, LayoutMaps};
    pub use rtt_flow::{r2_score, Dataset, DesignData, FlowConfig};
    pub use rtt_netlist::{CellLibrary, GateFn, Netlist, TimingGraph};
    pub use rtt_opt::{diff_netlists, optimize, OptConfig};
    pub use rtt_place::{place, PlaceConfig, Placement};
    pub use rtt_route::{route, RouteConfig};
    pub use rtt_sta::{run_sta, StaReport, WireModel};
}
