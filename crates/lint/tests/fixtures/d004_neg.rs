// D004 negative: collect then fixed-order reduce; serial sums inside
// closures are also fine.
use rayon::prelude::*;

pub fn total(xs: &[Vec<f32>]) -> f32 {
    let partials: Vec<f32> = xs.par_iter().map(|row| row.iter().sum::<f32>()).collect();
    // Fixed-shape pairwise tree over the collected (ordered) partials.
    tree_sum(&partials)
}

fn tree_sum(xs: &[f32]) -> f32 {
    match xs.len() {
        0 => 0.0,
        1 => xs[0],
        n => tree_sum(&xs[..n / 2]) + tree_sum(&xs[n / 2..]),
    }
}
