//! Layout-aware timing optimization with netlist restructuring.
//!
//! This crate simulates the commercial timing optimizer whose impact the
//! paper models. Each pass runs sign-off STA, traces the critical paths of
//! the worst endpoints, and applies four transforms:
//!
//! * **gate sizing** (structure-preserved) — upsize overloaded drivers;
//! * **buffer insertion** (structure-destructed) — split long critical net
//!   edges with a buffer at the midpoint;
//! * **gate decomposition** (structure-destructed) — rebuild 3/4-input
//!   AND/OR gates as chains of 2-input gates ordered by input arrival so the
//!   latest signal traverses the least logic;
//! * **buffer/inverter-pair bypass** (structure-destructed) — short-circuit
//!   redundant repeaters on critical paths.
//!
//! Every structure-destructing transform requires *layout legality*: bin
//! density below a limit and a position outside macro blocks. This is the
//! paper's central coupling — the optimizer's efficacy depends on local
//! whitespace, which is exactly the signal the CNN + endpoint-mask branch
//! of the model is designed to capture. Timing endpoints (ports, flip-flop
//! data pins) are never replaced, matching the paper's key observation.
//!
//! [`diff_netlists`] computes the paper's Table I replacement statistics by
//! structurally diffing the optimized netlist against its input (stable ids
//! make this exact).
//!
//! # Example
//!
//! ```
//! use rtt_netlist::CellLibrary;
//! use rtt_circgen::ripple_carry_adder;
//! use rtt_place::{place, PlaceConfig};
//! use rtt_opt::{optimize, OptConfig};
//!
//! let lib = CellLibrary::asap7_like();
//! let mut nl = ripple_carry_adder(8, &lib);
//! let mut pl = place(&nl, &lib, 0, &PlaceConfig::default());
//! let cfg = OptConfig { clock_period_ps: 80.0, ..OptConfig::default() };
//! let report = optimize(&mut nl, &mut pl, &lib, &cfg);
//! assert!(report.wns_after >= report.wns_before);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod diff;
mod legal;
mod optimizer;
mod transforms;

pub use config::{OptConfig, OptReport};
pub use diff::{diff_netlists, dirty_seed_pins, NetlistDiff};
pub use legal::{DensityTracker, LegalityViolation};
pub use optimizer::optimize;
pub use transforms::{
    bypass_inverter_pair, bypass_repeater, decompose_gate, insert_buffer, prune_dangling,
    split_high_fanout, TransformError,
};
