//! Everything the experiments need about one design.

use std::collections::HashMap;

use rtt_baselines::BaselineInputs;
use rtt_core::{ModelConfig, PreparedDesign};
use rtt_netlist::{CellLibrary, Netlist, PinId, TimingGraph};
use rtt_opt::{NetlistDiff, OptReport};
use rtt_place::Placement;
use rtt_sta::StaReport;

/// Wall-clock seconds of each flow stage (Table III's "commercial" side).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlowTimings {
    /// Timing-optimization time.
    pub opt_s: f64,
    /// Routing time (sign-off flow).
    pub route_s: f64,
    /// Sign-off STA time.
    pub sta_s: f64,
}

impl FlowTimings {
    /// Total flow time the model competes against.
    pub fn total_s(&self) -> f64 {
        self.opt_s + self.route_s + self.sta_s
    }
}

/// One design after both flows (with and without timing optimization).
#[derive(Clone, Debug)]
pub struct DesignData {
    /// Design name.
    pub name: String,
    /// Pre-optimization netlist — the model's input.
    pub input_netlist: Netlist,
    /// Pre-optimization placement — the model's input.
    pub input_placement: Placement,
    /// Timing graph of the input netlist.
    pub input_graph: TimingGraph,
    /// Netlist after timing optimization.
    pub opt_netlist: Netlist,
    /// Placement after timing optimization (inserted gates legalized).
    pub opt_placement: Placement,
    /// Structural diff input → optimized (Table I replacement stats).
    pub diff: NetlistDiff,
    /// What the optimizer did.
    pub opt_report: OptReport,
    /// Sign-off STA of the *optimized* design (labels).
    pub signoff: StaReport,
    /// Sign-off STA of the flow *without* optimization (Table I reference).
    pub no_opt: StaReport,
    /// Clock period used by both flows, ps.
    pub clock_period_ps: f32,
    /// Stage timings of the with-optimization flow.
    pub timings: FlowTimings,
}

impl DesignData {
    /// Ground-truth endpoint arrival times aligned with
    /// `input_graph.endpoints()` — the paper's prediction target.
    /// (Endpoints are never replaced, so every lookup succeeds.)
    pub fn endpoint_targets(&self) -> Vec<f32> {
        self.input_graph
            .endpoints()
            .iter()
            .map(|&v| {
                let pin = self.input_graph.pin_of(v);
                self.signoff.arrival(pin).expect("endpoints survive optimization")
            })
            .collect()
    }

    /// Sign-off net-edge delays restricted to surviving input edges.
    pub fn surviving_net_delays(&self) -> HashMap<(PinId, PinId), f32> {
        self.diff
            .surviving_net_edges()
            .iter()
            .filter_map(|&(d, s)| self.signoff.net_edge_delay(d, s).map(|v| ((d, s), v)))
            .collect()
    }

    /// Sign-off cell-edge delays restricted to surviving input cells.
    pub fn surviving_cell_delays(&self) -> HashMap<(PinId, PinId), f32> {
        self.diff
            .surviving_cell_edges()
            .iter()
            .filter_map(|&(i, o)| self.signoff.cell_edge_delay(i, o).map(|v| ((i, o), v)))
            .collect()
    }

    /// Sign-off arrivals at pins that survive optimization.
    pub fn surviving_arrivals(&self) -> HashMap<PinId, f32> {
        self.input_netlist
            .pins()
            .filter(|(pid, _)| self.opt_netlist.pin(*pid).is_alive())
            .filter_map(|(pid, _)| self.signoff.arrival(pid).map(|a| (pid, a)))
            .collect()
    }

    /// Prepares this design for the paper's model.
    pub fn prepared(&self, library: &CellLibrary, config: &ModelConfig) -> PreparedDesign {
        PreparedDesign::prepare(
            &self.input_netlist,
            library,
            &self.input_placement,
            &self.input_graph,
            config,
            self.endpoint_targets(),
        )
    }

    /// Assembles the baseline-facing view. The label maps must outlive the
    /// returned struct, so the caller owns them.
    pub fn baseline_inputs<'a>(
        &'a self,
        library: &'a CellLibrary,
        net_delays: &'a HashMap<(PinId, PinId), f32>,
        cell_delays: &'a HashMap<(PinId, PinId), f32>,
        arrivals: &'a HashMap<PinId, f32>,
        endpoint_targets: &'a [f32],
    ) -> BaselineInputs<'a> {
        BaselineInputs {
            name: &self.name,
            netlist: &self.input_netlist,
            library,
            placement: &self.input_placement,
            graph: &self.input_graph,
            signoff_net_delays: net_delays,
            signoff_cell_delays: cell_delays,
            signoff_arrivals: arrivals,
            endpoint_targets,
        }
    }
}
