// U001 positive: unsafe without a SAFETY comment.
pub fn reinterpret(x: u32) -> f32 {
    unsafe { std::mem::transmute(x) }
}
